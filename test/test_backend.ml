(* Differential suite for the two execution backends and the compile
   cache.

   The engine's parity contract (engine.mli) says Interp and Compiled are
   bit-exact: identical cycles, counters, traces, memory, speculation
   events and errors for any program and configuration.  The qcheck
   properties here drive random programs through both backends under
   every interesting configuration axis — protections, surcharges,
   rsb_refill, a stateful fwd_override hook, live speculation drills with
   planted injections, tiny fuel budgets and wild indirect calls — and
   compare full observable snapshots.  The golden fingerprints in
   test_measure.ml pin the same contract against the recorded seed. *)

open Pibe_ir
open Pibe_cpu
module Trace = Pibe_trace.Trace

(* ------------------------------------------------------------------ *)
(* Observable snapshot of a run                                        *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  outcomes : (int option, string) result list;
  cycles : int;
  counters : int list;
  trace : int list;
  memory : int list;
  icache : int * int;
  spec_events : Speculation.event list;
}

let counters_list (c : Engine.counters) =
  [
    c.Engine.calls;
    c.Engine.icalls;
    c.Engine.rets;
    c.Engine.insts;
    c.Engine.btb_misses;
    c.Engine.rsb_misses;
    c.Engine.pht_misses;
    c.Engine.stack_bytes;
    c.Engine.peak_stack_bytes;
  ]

(* [mkconfig] builds a fresh config (plus its drill state, if any) per
   run, so stateful hooks and speculation state never leak between the
   two backends under comparison.  [tierup] pins the compiled backend's
   tier-up threshold per engine — the suite's standard workloads make
   only a handful of calls, so exercising the fused tier needs low
   explicit thresholds. *)
let run_with ?tierup ?callfuse ?tier3 ~backend ~mkconfig prog calls =
  let config, spec = mkconfig () in
  let engine = Engine.create ~config ~backend ?tierup ?callfuse ?tier3 prog in
  let outcomes =
    List.map
      (fun (entry, args) ->
        match Engine.call engine entry args with
        | v -> Ok v
        | exception Engine.Runtime_error m -> Error ("runtime: " ^ m)
        | exception Engine.Out_of_fuel -> Error "out-of-fuel")
      calls
  in
  {
    outcomes;
    cycles = Engine.cycles engine;
    counters = counters_list (Engine.counters engine);
    trace = Engine.trace engine;
    memory = Array.to_list (Engine.memory engine);
    icache =
      (Icache.hit_count (Engine.icache engine), Icache.miss_count (Engine.icache engine));
    spec_events = (match spec with None -> [] | Some s -> Speculation.events s);
  }

let agree ?tierup ?callfuse ?tier3 ~mkconfig prog calls =
  run_with ~backend:Engine.Interp ~mkconfig prog calls
  = run_with ?tierup ?callfuse ?tier3 ~backend:Engine.Compiled ~mkconfig prog calls

(* ------------------------------------------------------------------ *)
(* Configuration axes                                                  *)
(* ------------------------------------------------------------------ *)

let base () =
  ({ Engine.default_config with Engine.record_trace = true }, None)

(* Site/function-keyed protections (pure, so both backends resolve the
   same kinds) plus every per-event surcharge and rsb_refill. *)
let hardened () =
  ( {
      Engine.default_config with
      Engine.record_trace = true;
      fwd_protection =
        (fun site ->
          match site.Types.site_id mod 6 with
          | 0 -> Protection.F_none
          | 1 -> Protection.F_retpoline
          | 2 -> Protection.F_lvi
          | 3 -> Protection.F_fineibt
          | 4 -> Protection.F_coarse_cfi
          | _ -> Protection.F_fenced_retpoline);
      bwd_protection =
        (fun name ->
          match Hashtbl.hash name mod 5 with
          | 0 -> Protection.B_none
          | 1 -> Protection.B_lvi
          | 2 -> Protection.B_ret_retpoline
          | 3 -> Protection.B_pac
          | _ -> Protection.B_fenced_ret_retpoline);
      (* pure and site/target-keyed, so both backends see the same CFI
         verdict for the same transient edge *)
      cfi_valid =
        (fun ~site ~target ~protection:_ ->
          (site.Types.site_id + String.length target) mod 3 <> 0);
      extra_call_cycles = 2;
      extra_icall_cycles = 3;
      extra_ret_cycles = 1;
      rsb_refill = true;
    },
    None )

(* Stateful forward-override hook (the JumpSwitches-style comparator):
   the charge depends on call order, so any divergence in execution order
   between backends shows up as a cycle mismatch. *)
let overridden () =
  let n = ref 0 in
  ( {
      Engine.default_config with
      Engine.record_trace = true;
      fwd_override =
        Some
          (fun ~site:_ ~target:_ ->
            incr n;
            !n mod 7);
    },
    None )

(* Live speculation drills with planted injections: poisoned fptr-cell
   loads (LVI) and an armed cross-thread RSB desync (Ret2spec). *)
let drilled () =
  let s = Speculation.create () in
  Speculation.inject_load s ~addr:3 ~value:1;
  Speculation.inject_rsb s ~scenario:Speculation.Cross_thread ~gadget:"f1";
  ( { Engine.default_config with Engine.record_trace = true; speculation = Some s },
    Some s )

(* A forged-PAC RSB desync against PAC-signed returns: the one scenario
   B_pac records, layered on the hardened protection mix so the PAC
   cost/event path is exercised under both backends. *)
let forged () =
  let s = Speculation.create () in
  Speculation.inject_load s ~addr:3 ~value:1;
  Speculation.inject_rsb s ~scenario:Speculation.Forged_pac ~gadget:"f1";
  let config, _ = hardened () in
  ({ config with Engine.speculation = Some s; rsb_refill = false }, Some s)

(* Tiny step budget: both backends must die out-of-fuel at the same
   instruction with the same partial cycles and counters. *)
let starved () =
  ({ Engine.default_config with Engine.record_trace = true; fuel = 37 }, None)

let differential name mkconfig =
  QCheck.Test.make ~count:60 ~name
    QCheck.(make Gen.(0 -- 100_000))
    (fun seed ->
      let prog = Helpers.random_program seed in
      agree ~mkconfig prog (Helpers.standard_calls prog))

(* ------------------------------------------------------------------ *)
(* Tier-2 superblock fusion                                            *)
(* ------------------------------------------------------------------ *)

(* Chain-biased programs at a threshold of 1: the first call runs tier 1,
   every later call the fused tier, so each run compares BOTH tiers
   against the interpreter — including the planted mid-segment faulting
   loads of the generator. *)
let differential_chain name tierup mkconfig =
  QCheck.Test.make ~count:60 ~name
    QCheck.(make Gen.(0 -- 100_000))
    (fun seed ->
      let prog = Helpers.random_chain_program seed in
      agree ~tierup ~mkconfig prog (Helpers.standard_calls prog))

(* Fuel budgets swept per seed around the size of one superblock: both
   backends must die out-of-fuel at the same step even when the budget
   runs dry in the middle of a fused segment or exactly at a chain
   seam. *)
let differential_chain_starved =
  QCheck.Test.make ~count:80 ~name:"superblock out-of-fuel agrees at every seam"
    QCheck.(make Gen.(0 -- 100_000))
    (fun seed ->
      let prog = Helpers.random_chain_program seed in
      let mkconfig () =
        ( {
            Engine.default_config with
            Engine.record_trace = true;
            fuel = 5 + (seed mod 97);
          },
          None )
      in
      agree ~tierup:1 ~mkconfig prog (Helpers.standard_calls prog))

(* The two compiled configurations must also agree with each other at
   any pair of thresholds — tier-up must be invisible, not just
   interp-equivalent. *)
let differential_tier_settings =
  QCheck.Test.make ~count:40 ~name:"tier thresholds mutually bit-exact"
    QCheck.(make Gen.(0 -- 100_000))
    (fun seed ->
      let prog = Helpers.random_chain_program seed in
      let calls = Helpers.standard_calls prog in
      let snap ?(callfuse = 0) ?(tier3 = 0) tierup =
        run_with ~tierup ~callfuse ~tier3 ~backend:Engine.Compiled ~mkconfig:base
          prog calls
      in
      let s0 = snap 0 in
      s0 = snap 1 && s0 = snap 2 && s0 = snap 1_000_000
      && s0 = snap ~callfuse:1 1
      && s0 = snap ~tier3:1 1
      && s0 = snap ~callfuse:1 ~tier3:2 1
      && s0 = snap ~callfuse:3 ~tier3:4 2)

(* ------------------------------------------------------------------ *)
(* Call-seam fusion and tier 3                                         *)
(* ------------------------------------------------------------------ *)

(* Call-chain-biased programs at thresholds of 1: leaf entry counts
   cross the fusion threshold during the first activation, so each run
   compares the unfused, self-promoting and fused call seams against
   the interpreter — including the generator's planted mid-leaf faults
   and deliberately oversized (fusion-rejected) leaves. *)
let differential_callfuse name mkconfig =
  QCheck.Test.make ~count:60 ~name
    QCheck.(make Gen.(0 -- 100_000))
    (fun seed ->
      let prog = Helpers.random_call_program seed in
      agree ~tierup:1 ~callfuse:1 ~mkconfig prog (Helpers.standard_calls prog))

(* Tier 3 at a threshold of 2 over the chain-heavy generator: the first
   calls run tiers 1-2, later calls the register-threaded stream, so
   one run covers every promotion edge (including faults landing inside
   int-coded batches). *)
let differential_tier3 name mkconfig =
  QCheck.Test.make ~count:60 ~name
    QCheck.(make Gen.(0 -- 100_000))
    (fun seed ->
      let prog = Helpers.random_chain_program seed in
      agree ~tierup:1 ~tier3:2 ~mkconfig prog (Helpers.standard_calls prog))

(* All tiers at once on the call-heavy shape. *)
let differential_all_tiers =
  QCheck.Test.make ~count:60 ~name:"callfuse+tier3 chains agree"
    QCheck.(make Gen.(0 -- 100_000))
    (fun seed ->
      let prog = Helpers.random_call_program seed in
      agree ~tierup:1 ~callfuse:1 ~tier3:2 ~mkconfig:base prog
        (Helpers.standard_calls prog))

(* Fuel budgets swept around the size of one fused call span: both
   backends must die out-of-fuel at the same step even when the budget
   runs dry exactly at a fused call seam (the pre-charged call + body +
   return batch must unwind to the interpreter's partial state). *)
let differential_callfuse_starved =
  QCheck.Test.make ~count:80 ~name:"out-of-fuel at call seams agrees"
    QCheck.(make Gen.(0 -- 100_000))
    (fun seed ->
      let prog = Helpers.random_call_program seed in
      let mkconfig () =
        ( {
            Engine.default_config with
            Engine.record_trace = true;
            fuel = 5 + (seed mod 97);
          },
          None )
      in
      agree ~tierup:1 ~callfuse:1 ~tier3:3 ~mkconfig prog
        (Helpers.standard_calls prog))

(* A deterministic fault in the middle of a fused run: the load's address
   register goes out of bounds only for the poisoned argument, after the
   chain is already promoted — the rolled-back batch accounting must
   leave exactly the interpreter's partial state. *)
let test_fault_mid_superblock () =
  let open Types in
  let b = Builder.create ~name:"f0" ~params:1 in
  let blocks = Array.init 4 (fun i -> if i = 0 then 0 else Builder.new_block b) in
  let addr = Builder.reg b in
  Array.iteri
    (fun i label ->
      Builder.switch_to b label;
      let r1 = Builder.reg b in
      Builder.assign b r1 (Binop (Add, Reg 0, Imm (i * 3)));
      if i = 2 then begin
        (* in-bounds for arg 0, far out of bounds for arg 9999 *)
        Builder.assign b addr (Binop (Mul, Reg 0, Imm 7));
        let r2 = Builder.reg b in
        Builder.assign b r2 (Load (Reg addr));
        Builder.observe b (Reg r2)
      end;
      Builder.store b ~addr:(Imm (16 + i)) ~value:(Reg r1);
      if i = Array.length blocks - 1 then Builder.ret b (Some (Reg r1))
      else Builder.jmp b blocks.(i + 1))
    blocks;
  let prog =
    Program.add_func
      (Program.with_globals_size Program.empty Helpers.mem_cells)
      (Builder.finish b ())
  in
  let calls =
    [ ("f0", [ 1 ]); ("f0", [ 2 ]); ("f0", [ 3 ]); ("f0", [ 9999 ]); ("f0", [ 4 ]) ]
  in
  Alcotest.(check bool)
    "fault mid-superblock rolls back bit-exactly" true
    (agree ~tierup:1 ~mkconfig:base prog calls
    && agree ~tierup:2 ~mkconfig:base prog calls)

(* A fused (caller, callee) pair whose leaf faults only for a poisoned
   argument, long after the seam is promoted: the batched call + body +
   return accounting must roll back to exactly the interpreter's partial
   state (call counter bumped, edge recorded, callee frame live). *)
let fused_call_prog () =
  let open Types in
  let leaf =
    let b = Builder.create ~name:"leaf" ~params:1 in
    let r1 = Builder.reg b in
    Builder.assign b r1 (Binop (Add, Reg 0, Imm 3));
    let addr = Builder.reg b in
    (* in-bounds for small args, far out of bounds for arg 9999 *)
    Builder.assign b addr (Binop (Mul, Reg 0, Imm 7));
    let r2 = Builder.reg b in
    Builder.assign b r2 (Load (Reg addr));
    Builder.store b ~addr:(Imm 20) ~value:(Reg r2);
    Builder.ret b (Some (Reg r1));
    Builder.finish b ()
  in
  let prog =
    Program.add_func (Program.with_globals_size Program.empty Helpers.mem_cells) leaf
  in
  let prog = ref prog in
  let main =
    let b = Builder.create ~name:"f0" ~params:1 in
    let r0 = Builder.reg b in
    Builder.assign b r0 (Binop (Add, Reg 0, Imm 1));
    (* a straight-line compute stretch so the trace qualifies for the
       tier-3 shape gate even with its two call seams — the fused seams
       then run inside the int-coded stream (the op_cx path) *)
    let acc = ref r0 in
    for k = 1 to 9 do
      let r = Builder.reg b in
      Builder.assign b r (Binop (Xor, Reg !acc, Imm (k * 5)));
      acc := r
    done;
    Builder.assign b r0 (Binop (Add, Reg !acc, Imm 0));
    let p, site = Program.fresh_site !prog in
    prog := p;
    let r1 = Builder.reg b in
    Builder.call b ~dst:r1 site "leaf" [ Reg 0 ];
    let p, site = Program.fresh_site !prog in
    prog := p;
    let r2 = Builder.reg b in
    Builder.call b ~dst:r2 site "leaf" [ Reg r1 ];
    Builder.observe b (Reg r2);
    Builder.ret b (Some (Reg r2));
    Builder.finish b ()
  in
  Program.add_func !prog main

let test_fault_mid_fused_call () =
  let prog = fused_call_prog () in
  let calls =
    [ ("f0", [ 1 ]); ("f0", [ 2 ]); ("f0", [ 3 ]); ("f0", [ 9999 ]); ("f0", [ 4 ]) ]
  in
  Alcotest.(check bool)
    "fault mid-fused-call rolls back bit-exactly" true
    (agree ~tierup:1 ~callfuse:1 ~mkconfig:base prog calls
    && agree ~tierup:1 ~callfuse:1 ~tier3:2 ~mkconfig:base prog calls
    && agree ~tierup:1 ~callfuse:2 ~mkconfig:hardened prog calls)

(* Every fuel budget from empty to past the whole workload: wherever the
   budget dies — before the seam, on the pre-charged call step, inside
   the fused body, on the return — both backends stop identically. *)
let test_fuel_sweep_at_call_seam () =
  let prog = fused_call_prog () in
  let calls = [ ("f0", [ 1 ]); ("f0", [ 2 ]); ("f0", [ 3 ]); ("f0", [ 4 ]) ] in
  for fuel = 1 to 80 do
    let mkconfig () =
      ({ Engine.default_config with Engine.record_trace = true; fuel }, None)
    in
    Alcotest.(check bool)
      (Printf.sprintf "fuel %d dies at the same step" fuel)
      true
      (agree ~tierup:1 ~callfuse:1 ~tier3:2 ~mkconfig prog calls)
  done

(* Accumulator-run superinstructions: tier 3 collapses consecutive
   [d = op d rhs] binops into one [op_acc] whose live value rides in a
   host register.  Cover every binop in both operand shapes, an
   odd-length run, the run-breaking aliases ([x = x + x] reads the
   operand from the frame, so it must NOT join a run), comparisons that
   collapse the accumulator to 0/1 mid-run, and register shift amounts
   past the mask — all bit-exact against the interpreter. *)
let acc_run_prog () =
  let open Types in
  let b = Builder.create ~name:"f0" ~params:1 in
  let x = Builder.reg b and y = Builder.reg b in
  Builder.assign b x (Move (Reg 0));
  Builder.assign b y (Binop (Mul, Reg 0, Imm 3));
  (* immediate-shape run over every op (Lt/Eq mid-run collapse to 0/1) *)
  List.iter
    (fun (op, i) -> Builder.assign b x (Binop (op, Reg x, Imm i)))
    [ (Add, 5); (Sub, 3); (Mul, 7); (Xor, 9); (Or, 33); (And, 255);
      (Shl, 3); (Shr, 2); (Lt, 1000); (Eq, 1); (Add, 41); (Mul, 13) ];
  (* operand aliasing the accumulator breaks the run *)
  Builder.assign b x (Binop (Add, Reg x, Reg x));
  (* register-shape run, including shift amounts >= 32 in [y] *)
  List.iter
    (fun op -> Builder.assign b x (Binop (op, Reg x, Reg y)))
    [ Add; Sub; Xor; And; Or; Shl; Shr; Mul; Lt; Eq ];
  Builder.observe b (Reg x);
  (* odd-length tail run exercises the single-item epilogue *)
  Builder.assign b x (Binop (Add, Reg x, Imm 2));
  Builder.assign b x (Binop (Xor, Reg x, Imm 5));
  Builder.assign b x (Binop (Or, Reg x, Reg y));
  Builder.ret b (Some (Reg x));
  Program.add_func (Program.with_globals_size Program.empty Helpers.mem_cells)
    (Builder.finish b ())

let test_acc_runs () =
  let prog = acc_run_prog () in
  let calls =
    List.map
      (fun v -> ("f0", [ v ]))
      [ 0; 1; 5; 17; 40; 255; 100000; max_int / 3; 0; 7 ]
  in
  Alcotest.(check bool)
    "accumulator runs agree bit-exactly" true
    (agree ~tierup:1 ~tier3:2 ~mkconfig:base prog calls
    && agree ~tierup:2 ~callfuse:1 ~tier3:3 ~mkconfig:hardened prog calls)

(* A self-recursive callee can never fuse (its body contains a call, so
   the leaf gate rejects it): the seam count must stay zero while the
   runs still agree with the interpreter. *)
let test_recursive_callee_not_fused () =
  let open Types in
  let prog = ref (Program.with_globals_size Program.empty Helpers.mem_cells) in
  let rec_func =
    let b = Builder.create ~name:"rec" ~params:1 in
    let base_b = Builder.new_block b in
    let rec_b = Builder.new_block b in
    let cond = Builder.reg b in
    Builder.assign b cond (Binop (Lt, Reg 0, Imm 1));
    Builder.br b (Reg cond) base_b rec_b;
    Builder.switch_to b base_b;
    Builder.ret b (Some (Imm 0));
    Builder.switch_to b rec_b;
    let n1 = Builder.reg b in
    Builder.assign b n1 (Binop (Sub, Reg 0, Imm 1));
    let p, site = Program.fresh_site !prog in
    prog := p;
    let r = Builder.reg b in
    Builder.call b ~dst:r site "rec" [ Reg n1 ];
    let r2 = Builder.reg b in
    Builder.assign b r2 (Binop (Add, Reg r, Imm 1));
    Builder.ret b (Some (Reg r2));
    Builder.finish b ()
  in
  prog := Program.add_func !prog rec_func;
  let main =
    let b = Builder.create ~name:"f0" ~params:1 in
    let p, site = Program.fresh_site !prog in
    prog := p;
    let r = Builder.reg b in
    Builder.call b ~dst:r site "rec" [ Reg 0 ];
    Builder.ret b (Some (Reg r));
    Builder.finish b ()
  in
  let prog = Program.add_func !prog main in
  let calls = List.init 6 (fun i -> ("f0", [ i ])) in
  Alcotest.(check bool)
    "recursive callee agrees unfused" true
    (agree ~tierup:1 ~callfuse:1 ~tier3:2 ~mkconfig:base prog calls);
  let engine = Engine.create ~tierup:1 ~callfuse:1 prog in
  List.iter (fun (entry, args) -> ignore (Engine.call engine entry args)) calls;
  Alcotest.(check int) "no seam ever fuses a recursive callee" 0
    (List.assoc "call-fused-seams" (Engine.backend_stats engine))

(* Tier-up decisions are per-engine counters, so they cannot depend on
   how many other engines run concurrently: N domains each driving a
   private engine over the same workload must reach identical snapshots,
   entry counts and promotion decisions as a sequential engine. *)
let test_tierup_deterministic_across_jobs () =
  let prog = Helpers.random_chain_program 321_123 in
  let call_prog = Helpers.random_call_program 321_124 in
  let calls = Helpers.standard_calls prog in
  let call_calls = Helpers.standard_calls call_prog in
  let profile () =
    let snap = run_with ~tierup:2 ~backend:Engine.Compiled ~mkconfig:base prog calls in
    (* all three tiers plus fusion live at once on the call-heavy shape *)
    let snap_fused =
      run_with ~tierup:1 ~callfuse:1 ~tier3:2 ~backend:Engine.Compiled ~mkconfig:base
        call_prog call_calls
    in
    let engine = Engine.create ~tierup:2 ~tier3:3 prog in
    List.iter
      (fun (entry, args) ->
        match Engine.call engine entry args with
        | _ -> ()
        | exception (Engine.Runtime_error _ | Engine.Out_of_fuel) -> ())
      calls;
    let counts =
      List.map
        (fun name ->
          ( name,
            Engine.entry_count engine name,
            Engine.promoted engine name,
            Engine.tier3_promoted engine name ))
        (Program.layout_order prog)
    in
    (snap, snap_fused, counts)
  in
  let sequential = profile () in
  let domains = List.init 4 (fun _ -> Domain.spawn profile) in
  List.iteri
    (fun i d ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d matches sequential tier-up profile" i)
        true
        (Domain.join d = sequential))
    domains

(* Wild indirect calls: corrupt the fptr-index cells so icalls resolve
   out of table (or to a huge index) — both backends must raise the same
   Runtime_error at the same point, with identical partial state. *)
let differential_wild =
  QCheck.Test.make ~count:60 ~name:"wild icalls agree"
    QCheck.(make Gen.(0 -- 100_000))
    (fun seed ->
      let prog = Helpers.random_program seed in
      let prog = Program.set_global prog ~addr:0 ~value:997 in
      let prog = Program.set_global prog ~addr:1 ~value:(-3) in
      agree ~mkconfig:base prog (Helpers.standard_calls prog))

(* ------------------------------------------------------------------ *)
(* Attack drills on the generated kernel                               *)
(* ------------------------------------------------------------------ *)

let drill_outcomes backend =
  let info = Helpers.kernel () in
  let spec = Speculation.create () in
  let config =
    { Engine.default_config with Engine.speculation = Some spec; rsb_refill = true }
  in
  let engine = Engine.create ~config ~backend info.Pibe_kernel.Gen.prog in
  Attack.run_all engine ~victim_site:info.Pibe_kernel.Gen.victim_icall_site
    ~poisoned_addr:info.Pibe_kernel.Gen.victim_ops_addr
    ~gadget_fptr:info.Pibe_kernel.Gen.gadget_fptr ~gadget:info.Pibe_kernel.Gen.gadget
    ~valid_gadget:info.Pibe_kernel.Gen.valid_gadget ~entry:info.Pibe_kernel.Gen.entry
    ~args:[ Pibe_kernel.Gen.nr info "read"; 0; 5 ]

let test_attack_drills () =
  let a = drill_outcomes Engine.Interp in
  let b = drill_outcomes Engine.Compiled in
  Alcotest.(check bool) "attack drill outcomes identical" true (a = b);
  Alcotest.(check bool)
    "unprotected kernel is attackable" true
    (List.exists (fun (_, o) -> o.Attack.gadget_reached) a)

(* ------------------------------------------------------------------ *)
(* Compile cache                                                       *)
(* ------------------------------------------------------------------ *)

(* Two interleaved programs must each compile exactly once: the LRU keeps
   both live across the alternation (the online dual replay's deployed /
   pristine pattern). *)
let test_interleaved_compile_once () =
  let p1 = Helpers.random_program 424_201 in
  let p2 = Helpers.random_program 424_202 in
  let h0, m0 = Engine.compile_cache_stats () in
  for _ = 1 to 4 do
    ignore (Engine.create p1);
    ignore (Engine.create p2)
  done;
  let h1, m1 = Engine.compile_cache_stats () in
  Alcotest.(check int) "each program compiled exactly once" 2 (m1 - m0);
  Alcotest.(check int) "remaining creates were cache hits" 6 (h1 - h0)

let test_trace_compile_events () =
  let p = Helpers.random_program 777_001 in
  Trace.start ();
  ignore (Engine.create p);
  ignore (Engine.create p);
  let events = Trace.stop () in
  let sched name ph =
    List.exists
      (fun (e : Trace.event) ->
        String.equal e.Trace.cat "sched" && String.equal e.Trace.name name
        && e.Trace.ph = ph)
      events
  in
  Alcotest.(check bool) "engine:compile span opened" true
    (sched "engine:compile" Trace.Begin);
  Alcotest.(check bool) "engine:compile span closed" true
    (sched "engine:compile" Trace.End);
  Alcotest.(check bool) "compile-cache-miss counter" true
    (sched "compile-cache-miss" Trace.Counter);
  Alcotest.(check bool) "compile-cache-hit counter" true
    (sched "compile-cache-hit" Trace.Counter)

(* The cache is keyed on (physical program x tier x speculation
   variant): interleaved creates at two tier settings must each compile
   once — a tiered recompile can never evict (or be served by) the
   baseline entry. *)
let test_lru_tier_keying () =
  let p = Helpers.random_chain_program 424_203 in
  let h0, m0 = Engine.compile_cache_stats () in
  for _ = 1 to 4 do
    ignore (Engine.create ~tierup:0 p);
    ignore (Engine.create ~tierup:8 p)
  done;
  let h1, m1 = Engine.compile_cache_stats () in
  Alcotest.(check int) "one compile per tier setting" 2 (m1 - m0);
  Alcotest.(check int) "remaining creates were cache hits" 6 (h1 - h0);
  (* different non-zero thresholds share the tiered closure program:
     the threshold lives in the engine, not the compiled artifact *)
  let h2, m2 = Engine.compile_cache_stats () in
  ignore (Engine.create ~tierup:50 p);
  let h3, m3 = Engine.compile_cache_stats () in
  Alcotest.(check int) "tiered entry shared across thresholds" 0 (m3 - m2);
  Alcotest.(check int) "threshold change is a cache hit" 1 (h3 - h2);
  (* the tier-3 threshold also lives in the engine, not the artifact *)
  let _, m4 = Engine.compile_cache_stats () in
  ignore (Engine.create ~tierup:8 ~tier3:7 p);
  let _, m5 = Engine.compile_cache_stats () in
  Alcotest.(check int) "tier3 threshold change is a cache hit" 0 (m5 - m4);
  (* the callfuse threshold is baked into the lowered closures, so a
     different setting is a different cache entry *)
  let _, m6 = Engine.compile_cache_stats () in
  ignore (Engine.create ~tierup:8 ~callfuse:1 p);
  ignore (Engine.create ~tierup:8 ~callfuse:1 p);
  let _, m7 = Engine.compile_cache_stats () in
  Alcotest.(check int) "callfuse setting keys its own entry" 1 (m7 - m6)

(* Tier-up observability: promotion emits an engine:tierup span around
   the fused lowering, a tierup-count sample at the crossing, and
   fused-superblocks / segment-coverage counters (all "sched" category,
   stripped from canonical traces, rendered by every sink). *)
let test_trace_tierup_events () =
  let p = Helpers.random_chain_program 777_002 in
  Trace.start ();
  let engine = Engine.create ~tierup:1 p in
  List.iter
    (fun (entry, args) -> ignore (Engine.call engine entry args))
    (Helpers.standard_calls p);
  let events = Trace.stop () in
  let sched name ph =
    List.exists
      (fun (e : Trace.event) ->
        String.equal e.Trace.cat "sched" && String.equal e.Trace.name name
        && e.Trace.ph = ph)
      events
  in
  Alcotest.(check bool) "engine:tierup span opened" true
    (sched "engine:tierup" Trace.Begin);
  Alcotest.(check bool) "engine:tierup span closed" true
    (sched "engine:tierup" Trace.End);
  Alcotest.(check bool) "tierup-count counter" true
    (sched "tierup-count" Trace.Counter);
  Alcotest.(check bool) "fused-superblocks counter" true
    (sched "fused-superblocks" Trace.Counter);
  Alcotest.(check bool) "segment-coverage counter" true
    (sched "segment-coverage" Trace.Counter)

(* Call-seam fusion and tier-3 observability: fusing a seam emits an
   engine:callfuse span and a call-fused-seams counter; tier-3 lowering
   emits an engine:tier3 span, a tier3-promotions sample at the crossing and
   a tier3-inst-coverage counter (all "sched" category). *)
let test_trace_callfuse_tier3_events () =
  let p = fused_call_prog () in
  Trace.start ();
  let engine = Engine.create ~tierup:1 ~callfuse:1 ~tier3:2 p in
  for i = 1 to 6 do
    ignore (Engine.call engine "f0" [ i ])
  done;
  Engine.trace_counters ~name:"probe" engine;
  let events = Trace.stop () in
  let sched name ph =
    List.exists
      (fun (e : Trace.event) ->
        String.equal e.Trace.cat "sched" && String.equal e.Trace.name name
        && e.Trace.ph = ph)
      events
  in
  Alcotest.(check bool) "engine:callfuse span opened" true
    (sched "engine:callfuse" Trace.Begin);
  Alcotest.(check bool) "engine:callfuse span closed" true
    (sched "engine:callfuse" Trace.End);
  Alcotest.(check bool) "call-fused-seams counter" true
    (sched "call-fused-seams" Trace.Counter);
  Alcotest.(check bool) "engine:tier3 span opened" true
    (sched "engine:tier3" Trace.Begin);
  Alcotest.(check bool) "engine:tier3 span closed" true
    (sched "engine:tier3" Trace.End);
  Alcotest.(check bool) "tier3-promotions counter" true (sched "tier3-promotions" Trace.Counter);
  Alcotest.(check bool) "tier3-inst-coverage counter" true
    (sched "tier3-inst-coverage" Trace.Counter);
  Alcotest.(check bool) "lowering stats sample" true
    (sched "probe:lowering" Trace.Counter)

(* The tier-up profile accessors: per-engine entry counts and promotion
   state, and their off states on interp / --tierup 0 engines. *)
let test_tierup_accessors () =
  let p = Helpers.random_chain_program 555_001 in
  let tiered = Engine.create ~tierup:2 p in
  let baseline = Engine.create ~tierup:0 p in
  let interp = Engine.create ~backend:Engine.Interp p in
  List.iter
    (fun (entry, args) ->
      ignore (Engine.call tiered entry args);
      ignore (Engine.call baseline entry args);
      ignore (Engine.call interp entry args))
    (Helpers.standard_calls p);
  Alcotest.(check int) "threshold visible" 2 (Engine.tierup_threshold tiered);
  Alcotest.(check int) "tierup 0 means off" 0 (Engine.tierup_threshold baseline);
  Alcotest.(check int) "interp never counts" 0 (Engine.entry_count interp "f0");
  Alcotest.(check int) "five top-level entries counted" 5
    (Engine.entry_count tiered "f0");
  Alcotest.(check bool) "promoted past threshold" true (Engine.promoted tiered "f0");
  Alcotest.(check bool) "baseline never promotes" false
    (Engine.promoted baseline "f0");
  Alcotest.(check int) "unknown functions count zero" 0
    (Engine.entry_count tiered "nosuch");
  (* the new-tier accessors and their off states *)
  let fused = Engine.create ~tierup:1 ~callfuse:1 ~tier3:3 p in
  List.iter
    (fun (entry, args) -> ignore (Engine.call fused entry args))
    (Helpers.standard_calls p);
  Alcotest.(check int) "tier3 threshold visible" 3 (Engine.tier3_threshold fused);
  Alcotest.(check int) "callfuse threshold visible" 1 (Engine.callfuse_threshold fused);
  Alcotest.(check bool) "tier3-promoted past threshold" true
    (Engine.tier3_promoted fused "f0");
  Alcotest.(check bool) "tier3 off by tierup 0" true
    (Engine.tier3_threshold baseline = 0 && Engine.callfuse_threshold baseline = 0);
  Alcotest.(check bool) "tiered default engine reports defaults" true
    (Engine.tier3_threshold tiered = Engine.default_tier3 ()
    && Engine.callfuse_threshold tiered = Engine.default_callfuse ());
  Alcotest.(check bool) "interp never tier3-promotes" false
    (Engine.tier3_promoted interp "f0");
  Alcotest.(check bool) "interp backend stats empty" true
    (Engine.backend_stats interp = []);
  Alcotest.(check bool) "compiled backend stats populated" true
    (List.mem_assoc "call-fused-seams" (Engine.backend_stats fused)
    && List.mem_assoc "tier3-traces" (Engine.backend_stats fused))

(* ------------------------------------------------------------------ *)
(* Backend selection plumbing                                          *)
(* ------------------------------------------------------------------ *)

let test_backend_selection () =
  let p = Helpers.random_program 9_001 in
  let i = Engine.create ~backend:Engine.Interp p in
  let c = Engine.create ~backend:Engine.Compiled p in
  Alcotest.(check bool) "explicit interp" true (Engine.backend i = Engine.Interp);
  Alcotest.(check bool) "explicit compiled" true (Engine.backend c = Engine.Compiled);
  Alcotest.(check bool) "default is compiled" true
    (Engine.default_backend () = Engine.Compiled);
  List.iter
    (fun b ->
      Alcotest.(check bool) "name round-trips" true
        (Engine.backend_of_string (Engine.backend_to_string b) = Some b))
    [ Engine.Interp; Engine.Compiled ];
  Alcotest.(check bool) "unknown name rejected" true
    (Engine.backend_of_string "threaded" = None)

let suite =
  [
    Helpers.qcheck_to_alcotest (differential "plain runs agree" base);
    Helpers.qcheck_to_alcotest (differential "hardened+rsb_refill runs agree" hardened);
    Helpers.qcheck_to_alcotest (differential "stateful fwd_override agrees" overridden);
    Helpers.qcheck_to_alcotest (differential "speculation drills agree" drilled);
    Helpers.qcheck_to_alcotest (differential "forged-PAC drills agree" forged);
    Helpers.qcheck_to_alcotest (differential "out-of-fuel agrees" starved);
    Helpers.qcheck_to_alcotest differential_wild;
    Helpers.qcheck_to_alcotest
      (differential_chain "superblock chains agree (tierup 1)" 1 base);
    Helpers.qcheck_to_alcotest
      (differential_chain "superblock chains agree hardened (tierup 1)" 1 hardened);
    Helpers.qcheck_to_alcotest
      (differential_chain "superblock chains agree drilled (tierup 1)" 1 drilled);
    Helpers.qcheck_to_alcotest
      (differential_chain "superblock chains agree (tierup 2)" 2 base);
    Helpers.qcheck_to_alcotest differential_chain_starved;
    Helpers.qcheck_to_alcotest differential_tier_settings;
    Helpers.qcheck_to_alcotest
      (differential_callfuse "call-seam fusion agrees" base);
    Helpers.qcheck_to_alcotest
      (differential_callfuse "call-seam fusion agrees hardened" hardened);
    Helpers.qcheck_to_alcotest
      (differential_callfuse "call-seam fusion agrees drilled" drilled);
    Helpers.qcheck_to_alcotest (differential_tier3 "tier3 chains agree" base);
    Helpers.qcheck_to_alcotest
      (differential_tier3 "tier3 chains agree hardened" hardened);
    Helpers.qcheck_to_alcotest differential_all_tiers;
    Helpers.qcheck_to_alcotest differential_callfuse_starved;
    Alcotest.test_case "fault mid-superblock rolls back" `Quick
      test_fault_mid_superblock;
    Alcotest.test_case "fault mid-fused-call rolls back" `Quick
      test_fault_mid_fused_call;
    Alcotest.test_case "fuel sweep at call seams" `Quick
      test_fuel_sweep_at_call_seam;
    Alcotest.test_case "accumulator runs bit-exact" `Quick test_acc_runs;
    Alcotest.test_case "recursive callee never fuses" `Quick
      test_recursive_callee_not_fused;
    Alcotest.test_case "tier-up deterministic across domains" `Quick
      test_tierup_deterministic_across_jobs;
    Alcotest.test_case "kernel attack drills agree" `Quick test_attack_drills;
    Alcotest.test_case "interleaved programs compile once" `Quick
      test_interleaved_compile_once;
    Alcotest.test_case "compile cache keyed per tier" `Quick test_lru_tier_keying;
    Alcotest.test_case "compile spans and cache counters traced" `Quick
      test_trace_compile_events;
    Alcotest.test_case "tierup spans and counters traced" `Quick
      test_trace_tierup_events;
    Alcotest.test_case "callfuse and tier3 spans traced" `Quick
      test_trace_callfuse_tier3_events;
    Alcotest.test_case "tier-up profile accessors" `Quick test_tierup_accessors;
    Alcotest.test_case "backend selection and names" `Quick test_backend_selection;
  ]
