(* Profiles: the store, serialization, the LBR ring, and the full
   collect-at-addresses / lift-to-IR flow. *)

open Pibe_ir
module Profile = Pibe_profile.Profile
module Lbr = Pibe_profile.Lbr
module Collector = Pibe_profile.Collector
module Engine = Pibe_cpu.Engine

(* ------------------------------ store ------------------------------ *)

let test_counts_accumulate () =
  let p = Profile.create () in
  Profile.add_direct p ~origin:1 ~count:10;
  Profile.add_direct p ~origin:1 ~count:5;
  Alcotest.(check int) "sum" 15 (Profile.direct_count p ~origin:1);
  Alcotest.(check int) "absent" 0 (Profile.direct_count p ~origin:2)

let test_value_profile_sorted () =
  let p = Profile.create () in
  Profile.add_indirect p ~origin:7 ~target:"cold" ~count:1;
  Profile.add_indirect p ~origin:7 ~target:"hot" ~count:100;
  Profile.add_indirect p ~origin:7 ~target:"warm" ~count:10;
  Alcotest.(check (list (pair string int)))
    "hottest first"
    [ ("hot", 100); ("warm", 10); ("cold", 1) ]
    (Profile.value_profile p ~origin:7)

let test_site_weight_uses_origin () =
  let p = Profile.create () in
  Profile.add_direct p ~origin:3 ~count:42;
  let clone = { Types.site_id = 99; site_origin = 3 } in
  Alcotest.(check int) "clone inherits counts" 42 (Profile.site_weight p clone)

let test_remove_indirect_target () =
  let p = Profile.create () in
  Profile.add_indirect p ~origin:7 ~target:"a" ~count:5;
  Profile.add_indirect p ~origin:7 ~target:"b" ~count:3;
  Profile.remove_indirect_target p ~origin:7 ~target:"a";
  Alcotest.(check (list (pair string int))) "residual" [ ("b", 3) ]
    (Profile.value_profile p ~origin:7);
  Profile.remove_indirect_target p ~origin:7 ~target:"b";
  Alcotest.(check (list int)) "origin gone" [] (Profile.profiled_indirect_origins p)

let test_merge () =
  let a = Profile.create () and b = Profile.create () in
  Profile.add_direct a ~origin:1 ~count:10;
  Profile.add_direct b ~origin:1 ~count:32;
  Profile.add_entry a ~func:"f" ~count:10;
  Profile.add_indirect b ~origin:2 ~target:"g" ~count:4;
  let m = Profile.merge a b in
  Alcotest.(check int) "direct merged" 42 (Profile.direct_count m ~origin:1);
  Alcotest.(check int) "entry merged" 10 (Profile.invocations m "f");
  Alcotest.(check int) "indirect merged" 4
    (Profile.site_weight m { Types.site_id = 2; site_origin = 2 })

let random_profile seed =
  let rng = Pibe_util.Rng.create seed in
  let p = Profile.create () in
  for origin = 0 to Pibe_util.Rng.int rng 10 do
    if Pibe_util.Rng.bool rng then
      Profile.add_direct p ~origin ~count:(1 + Pibe_util.Rng.int rng 1000)
    else
      for t = 0 to Pibe_util.Rng.int rng 4 do
        Profile.add_indirect p ~origin
          ~target:(Printf.sprintf "t%d" t)
          ~count:(1 + Pibe_util.Rng.int rng 500)
      done
  done;
  for f = 0 to Pibe_util.Rng.int rng 6 do
    Profile.add_entry p ~func:(Printf.sprintf "f%d" f) ~count:(1 + Pibe_util.Rng.int rng 99)
  done;
  p

let prop_serialization_roundtrip =
  QCheck.Test.make ~name:"profile text serialization round-trips" ~count:200
    QCheck.small_int (fun seed ->
      let p = random_profile seed in
      let p' = Profile.of_string (Profile.to_string p) in
      Profile.to_string p' = Profile.to_string p)

let test_merge_weighted () =
  let p = Profile.create () in
  Profile.add_direct p ~origin:1 ~count:100;
  Profile.add_indirect p ~origin:2 ~target:"g" ~count:7;
  Profile.add_entry p ~func:"f" ~count:3;
  (* scale by 1.0 is the identity *)
  Alcotest.(check string) "scale 1.0 identity" (Profile.to_string p)
    (Profile.to_string (Profile.scale p 1.0));
  (* two half-weighted copies reassemble the original *)
  Alcotest.(check string) "halves reassemble"
    (Profile.to_string p)
    (Profile.to_string (Profile.merge_weighted [ (0.5, p); (0.5, p) ]));
  (* keys whose weighted sum rounds to zero are dropped, keeping decayed
     profiles sparse *)
  let tiny = Profile.create () in
  Profile.add_indirect tiny ~origin:9 ~target:"t" ~count:1;
  Alcotest.(check (list int)) "sub-half weight drops the key" []
    (Profile.profiled_indirect_origins (Profile.scale tiny 0.4));
  Alcotest.check_raises "negative weight rejected"
    (Invalid_argument "Profile.merge_weighted: negative weight") (fun () ->
      ignore (Profile.merge_weighted [ (-1.0, p) ]))

(* A structured generator hitting the grammar's corners on purpose: the
   empty profile, many-target value profiles, and counts up to max_int —
   none of which the seed-walk generator above reliably produces. *)
let structured_profile_gen =
  let open QCheck.Gen in
  let count =
    frequency
      [ (4, int_range 1 1000); (2, int_range 1_000_000 1_000_000_000); (1, return max_int) ]
  in
  let directs = list_size (int_range 0 6) (pair (int_range 0 50) count) in
  let vps =
    list_size (int_range 0 4)
      (pair (int_range 100 150) (list_size (int_range 1 8) count))
  in
  let entries = list_size (int_range 0 4) (pair (int_range 0 20) count) in
  map
    (fun (directs, vps, entries) ->
      let p = Profile.create () in
      List.iter (fun (origin, count) -> Profile.add_direct p ~origin ~count) directs;
      List.iter
        (fun (origin, counts) ->
          List.iteri
            (fun i count ->
              Profile.add_indirect p ~origin ~target:(Printf.sprintf "tgt_%d" i) ~count)
            counts)
        vps;
      List.iter
        (fun (f, count) -> Profile.add_entry p ~func:(Printf.sprintf "fn%d" f) ~count)
        entries;
      p)
    (triple directs vps entries)

let prop_structured_roundtrip =
  QCheck.Test.make ~name:"serialization round-trips (empty/multi-target/max_int)"
    ~count:300
    (QCheck.make ~print:Profile.to_string structured_profile_gen)
    (fun p ->
      let p' = Profile.of_string (Profile.to_string p) in
      Profile.to_string p' = Profile.to_string p)

(* ---------------------- sharded merge properties -------------------- *)

(* Like [structured_profile_gen] but with counts small enough that the
   float accumulator is exact before rounding: the sharding properties
   below reason about rounding error alone, not precision loss. *)
let bounded_profile_gen =
  let open QCheck.Gen in
  let count = int_range 1 100_000 in
  let directs = list_size (int_range 0 6) (pair (int_range 0 50) count) in
  let vps =
    list_size (int_range 0 4)
      (pair (int_range 100 150) (list_size (int_range 1 8) count))
  in
  let entries = list_size (int_range 0 4) (pair (int_range 0 20) count) in
  map
    (fun (directs, vps, entries) ->
      let p = Profile.create () in
      List.iter (fun (origin, count) -> Profile.add_direct p ~origin ~count) directs;
      List.iter
        (fun (origin, counts) ->
          List.iteri
            (fun i count ->
              Profile.add_indirect p ~origin ~target:(Printf.sprintf "tgt_%d" i) ~count)
            counts)
        vps;
      List.iter
        (fun (f, count) -> Profile.add_entry p ~func:(Printf.sprintf "fn%d" f) ~count)
        entries;
      p)
    (triple directs vps entries)

(* weights in {0, 0.125, ..., 2.0}: exercises zero (key-dropping) and
   fractional weights with exactly representable floats *)
let weighted_parts_gen =
  let open QCheck.Gen in
  list_size (int_range 1 12)
    (pair (map (fun i -> float_of_int i /. 8.0) (int_range 0 16)) bounded_profile_gen)

(* Largest per-key absolute difference between two profiles, over every
   key the bounded generator can produce. *)
let max_key_diff a b =
  let d = ref 0 in
  let upd x y = d := max !d (abs (x - y)) in
  for origin = 0 to 160 do
    upd (Profile.direct_count a ~origin) (Profile.direct_count b ~origin);
    let va = Profile.value_profile a ~origin in
    let vb = Profile.value_profile b ~origin in
    List.iter
      (fun (t, c) ->
        upd c (match List.assoc_opt t vb with Some c' -> c' | None -> 0))
      va;
    List.iter (fun (t, c) -> if not (List.mem_assoc t va) then upd 0 c) vb
  done;
  for f = 0 to 20 do
    let name = Printf.sprintf "fn%d" f in
    upd (Profile.invocations a name) (Profile.invocations b name)
  done;
  !d

(* The fleet aggregator's soundness: merging each shard first and then
   merging the shard results is the same profile as one sequential merge,
   up to rounding — each shard rounds its own sum once, so the sharded
   path can differ by at most 1 per shard on any key. *)
let prop_sharded_merge_matches_sequential =
  QCheck.Test.make ~name:"shard-then-merge matches sequential merge (float tolerance)"
    ~count:150
    (QCheck.make weighted_parts_gen)
    (fun parts ->
      let nshards = 3 in
      let sequential = Profile.merge_weighted parts in
      let shards = Array.make nshards [] in
      List.iteri (fun i part -> shards.(i mod nshards) <- part :: shards.(i mod nshards)) parts;
      let sharded =
        Profile.merge_weighted
          (List.filter_map
             (fun ps ->
               if ps = [] then None
               else Some (1.0, Profile.merge_weighted (List.rev ps)))
             (Array.to_list shards))
      in
      max_key_diff sequential sharded <= nshards)

(* With unit weights there is no rounding at all: the weighted combinator
   must agree exactly with a pairwise [merge] fold. *)
let prop_unit_weight_merge_exact =
  QCheck.Test.make ~name:"unit-weight merge_weighted equals pairwise merge exactly"
    ~count:150
    (QCheck.make QCheck.Gen.(list_size (int_range 0 8) bounded_profile_gen))
    (fun ps ->
      Profile.to_string (Profile.merge_weighted (List.map (fun p -> (1.0, p)) ps))
      = Profile.to_string (List.fold_left Profile.merge (Profile.create ()) ps))

(* Summation order (shard interleaving) moves each key by at most one
   rounding step. *)
let prop_merge_weighted_commutes =
  QCheck.Test.make ~name:"merge_weighted is order-insensitive up to rounding" ~count:150
    (QCheck.make weighted_parts_gen)
    (fun parts ->
      max_key_diff (Profile.merge_weighted parts) (Profile.merge_weighted (List.rev parts))
      <= 1)

let test_empty_profile_roundtrip () =
  let empty = Profile.create () in
  Alcotest.(check string) "canonical empty form" "profile {\n}\n" (Profile.to_string empty);
  Alcotest.(check string) "empty round-trips" (Profile.to_string empty)
    (Profile.to_string (Profile.of_string (Profile.to_string empty)))

let test_of_string_rejects_garbage () =
  Alcotest.check_raises "garbage"
    (Failure "Profile.of_string: malformed line: direct x = 1") (fun () ->
      ignore (Profile.of_string "direct x = 1"));
  (* every malformed shape must raise Failure naming the offending line *)
  List.iter
    (fun line ->
      match Profile.of_string line with
      | exception Failure msg ->
        Alcotest.(check string)
          (Printf.sprintf "%S names the line" line)
          ("Profile.of_string: malformed line: " ^ line)
          msg
      | _ -> Alcotest.failf "%S was accepted" line)
    [
      "entry read = 5";       (* function name missing the @ sigil *)
      "vp 1 target = 2";      (* target name missing the @ sigil *)
      "vp x @t = 2";          (* non-numeric origin *)
      "direct 1 = abc";       (* non-numeric count *)
      "direct 1 2";           (* missing '=' *)
      "direct 1 = 2 extra";   (* trailing tokens *)
      "entry @ = 1 = 2";      (* doubled '=' *)
      "weird 1 = 2";          (* unknown record kind *)
    ]

(* ------------------------------- LBR ------------------------------- *)

let test_lbr_drains_on_overflow_and_flush () =
  let drained = ref [] in
  let lbr = Lbr.create ~depth:4 ~drain:(fun r -> drained := r :: !drained) () in
  for i = 1 to 6 do
    Lbr.record lbr ~from_addr:i ~to_addr:(i * 10)
  done;
  Alcotest.(check int) "one overflow drain" 4 (List.length !drained);
  Lbr.flush lbr;
  Alcotest.(check int) "all records delivered" 6 (List.length !drained);
  Alcotest.(check int) "total counted" 6 (Lbr.drained lbr)

(* --------------------------- collector ----------------------------- *)

let test_collector_lift_matches_execution () =
  let prog = Helpers.random_program 21 in
  let collector = Collector.create prog in
  let config =
    { Engine.default_config with Engine.on_edge = Some (Collector.hook collector) }
  in
  let engine = Engine.create ~config prog in
  List.iter
    (fun (entry, args) -> ignore (Engine.call engine entry args))
    (Helpers.standard_calls prog);
  let profile = Collector.lift collector in
  let counters = Engine.counters engine in
  (* Every executed edge must be lifted: total profile weight = executed
     calls (direct + indirect, asm included on the indirect side). *)
  let total =
    Profile.total_direct_weight profile + Profile.total_indirect_weight profile
  in
  Alcotest.(check int) "weights = executed calls"
    (counters.Engine.calls + counters.Engine.icalls)
    total

let test_collector_invocations_match () =
  let info = Helpers.kernel () in
  let prog = info.Pibe_kernel.Gen.prog in
  let collector = Collector.create prog in
  let config =
    { Engine.default_config with Engine.on_edge = Some (Collector.hook collector) }
  in
  let engine = Engine.create ~config prog in
  let nr = Pibe_kernel.Gen.nr info "read" in
  for i = 1 to 50 do
    ignore (Engine.call engine info.Pibe_kernel.Gen.entry [ nr; 0; i * 9 ])
  done;
  let profile = Collector.lift collector in
  Alcotest.(check int) "sys_read entered 50 times" 50 (Profile.invocations profile "sys_read");
  Alcotest.(check bool) "vfs_read profiled" true (Profile.invocations profile "vfs_read" > 0);
  (* the hot fs target appears in the victim site's value profile *)
  let vp =
    Profile.value_profile profile ~origin:info.Pibe_kernel.Gen.victim_icall_site
  in
  Alcotest.(check bool) "ext4 read dominates" true
    (match vp with (t, _) :: _ -> String.length t > 0 | [] -> false)

(* ----------------------- provenance persistence --------------------- *)

module Provenance = Pibe_profile.Provenance

let provenance_fixture =
  String.concat "\n"
    [
      "provenance {";
      "  promo 900 = 7 @ext4_read";
      "  inline @caller_a @leaf 41 41 1200 60 sites 90,91";
      "  inline @caller_b @mid 55 12 0 0 entries @caller_b";
      "  inline @caller_c @deep 77 77 350 10 none";
      "}";
    ]
  ^ "\n"

let test_provenance_roundtrip () =
  let pv = Provenance.of_string provenance_fixture in
  Alcotest.(check string) "to_string is a fixpoint" provenance_fixture
    (Provenance.to_string pv);
  Alcotest.(check string) "second round-trip stable"
    (Provenance.to_string pv)
    (Provenance.to_string (Provenance.of_string (Provenance.to_string pv)));
  Alcotest.(check int) "3 instances" 3 (Provenance.inline_count pv);
  Alcotest.(check int) "1 promotion" 1 (Provenance.promotion_count pv);
  (* every field — including the carry-forward snapshot — survives *)
  (match Provenance.instances pv with
  | [ a; b; c ] ->
    Alcotest.(check int) "trained_count" 1200 a.Provenance.trained_count;
    Alcotest.(check int) "trained_caller_entries" 60 a.Provenance.trained_caller_entries;
    Alcotest.(check bool) "sites witness" true
      (a.Provenance.witness = Provenance.W_sites [ 90; 91 ]);
    Alcotest.(check bool) "entries witness" true
      (b.Provenance.witness = Provenance.W_caller_entries "caller_b");
    Alcotest.(check bool) "none witness" true (c.Provenance.witness = Provenance.W_none);
    Alcotest.(check int) "origin differs from site id" 12 b.Provenance.origin
  | _ -> Alcotest.fail "expected exactly three instances");
  Alcotest.(check (option (pair int string))) "promotion folds back"
    (Some (7, "ext4_read"))
    (Provenance.promotion pv 900)

let test_provenance_rejects_garbage () =
  List.iter
    (fun line ->
      match Provenance.of_string line with
      | exception Failure msg ->
        Alcotest.(check string)
          (Printf.sprintf "%S names the line" line)
          ("Provenance.of_string: malformed line: " ^ line)
          msg
      | _ -> Alcotest.failf "%S was accepted" line)
    [
      "inline @a @b 1 2 3 none";        (* missing the carry-forward ints *)
      "inline @a @b 1 2 3 4 maybe";     (* unknown witness kind *)
      "inline @a @b 1 2 3 4 sites x";   (* non-numeric witness site *)
      "inline a @b 1 2 3 4 none";       (* caller missing the @ sigil *)
      "promo 1 = 2 target";             (* target missing the @ sigil *)
      "weird 1 = 2";                    (* unknown record kind *)
    ]

(* -------------------------- staleness matching ---------------------- *)

(* The program's site origins, split by call kind, plus its function
   names — the ground truth [match_to] checks against. *)
let program_identities prog =
  let directs = ref [] and indirects = ref [] and funcs = ref [] in
  Program.iter_funcs prog (fun f ->
      funcs := f.Types.fname :: !funcs;
      Func.iter_insts f (fun _ i ->
          match i with
          | Types.Call { site; _ } -> directs := site.Types.site_origin :: !directs
          | Types.Icall { site; _ } | Types.Asm_icall { site; _ } ->
            indirects := site.Types.site_origin :: !indirects
          | Types.Assign _ | Types.Store _ | Types.Observe _ -> ()));
  (!directs, !indirects, !funcs)

let test_match_to_empty_profile () =
  let prog = Helpers.random_program 31 in
  let matched, stats = Profile.match_to (Profile.create ()) prog in
  Alcotest.(check string) "empty in, empty out" "profile {\n}\n"
    (Profile.to_string matched);
  Alcotest.(check int) "nothing kept" 0
    (stats.Profile.direct_kept + stats.Profile.indirect_kept + stats.Profile.entries_kept);
  Alcotest.(check int) "nothing dropped" 0
    (stats.Profile.direct_dropped + stats.Profile.indirect_dropped
    + stats.Profile.entries_dropped)

let test_match_to_all_sites_vanished () =
  let prog = Helpers.random_program 31 in
  let p = Profile.create () in
  Profile.add_direct p ~origin:9_000_001 ~count:100;
  Profile.add_indirect p ~origin:9_000_002 ~target:"no_such_fn" ~count:40;
  Profile.add_entry p ~func:"no_such_fn" ~count:7;
  let matched, stats = Profile.match_to p prog in
  Alcotest.(check string) "everything dropped" "profile {\n}\n"
    (Profile.to_string matched);
  Alcotest.(check int) "direct weight dropped" 100 stats.Profile.direct_dropped;
  Alcotest.(check int) "indirect weight dropped" 40 stats.Profile.indirect_dropped;
  Alcotest.(check int) "entry weight dropped" 7 stats.Profile.entries_dropped;
  (* the input is not mutated *)
  Alcotest.(check int) "input intact" 100 (Profile.direct_count p ~origin:9_000_001)

(* A site id removed in one release can be re-minted for a site of the
   other kind in a later one; the per-kind check must refuse to let the
   stale weight leak across kinds. *)
let test_match_to_kind_collision () =
  let prog = Helpers.random_program 31 in
  let directs, indirects, funcs = program_identities prog in
  let d = List.hd directs and i = List.hd indirects and f = List.hd funcs in
  let p = Profile.create () in
  (* stale weight recorded under the wrong kind for today's program *)
  Profile.add_direct p ~origin:i ~count:50;
  Profile.add_indirect p ~origin:d ~target:f ~count:60;
  (* and legitimate weight under the right kind *)
  Profile.add_direct p ~origin:d ~count:11;
  Profile.add_indirect p ~origin:i ~target:f ~count:22;
  let matched, stats = Profile.match_to p prog in
  Alcotest.(check int) "collided direct weight dropped" 50 stats.Profile.direct_dropped;
  Alcotest.(check int) "collided indirect weight dropped" 60
    stats.Profile.indirect_dropped;
  Alcotest.(check int) "right-kind direct kept" 11 (Profile.direct_count matched ~origin:d);
  Alcotest.(check (list (pair string int))) "right-kind indirect kept" [ (f, 22) ]
    (Profile.value_profile matched ~origin:i)

let test_match_to_renames () =
  let prog = Helpers.random_program 31 in
  let _, indirects, funcs = program_identities prog in
  let i = List.hd indirects and f = List.hd funcs in
  let p = Profile.create () in
  Profile.add_indirect p ~origin:i ~target:"old_name" ~count:33;
  Profile.add_entry p ~func:"old_name" ~count:9;
  let matched, stats = Profile.match_to ~renames:[ ("old_name", f) ] p prog in
  Alcotest.(check (list (pair string int))) "target renamed then kept" [ (f, 33) ]
    (Profile.value_profile matched ~origin:i);
  Alcotest.(check int) "entry renamed then kept" 9 (Profile.invocations matched f);
  Alcotest.(check int) "renamed weight accounted" 42 stats.Profile.renamed_weight

let prop_match_to_idempotent =
  QCheck.Test.make ~name:"staleness matching is idempotent" ~count:100
    QCheck.small_int (fun seed ->
      let prog = Helpers.random_program 31 in
      let p = random_profile seed in
      let once, _ = Profile.match_to p prog in
      let twice, stats = Profile.match_to once prog in
      Profile.to_string twice = Profile.to_string once
      && stats.Profile.direct_dropped = 0
      && stats.Profile.indirect_dropped = 0
      && stats.Profile.entries_dropped = 0)

(* -------------------- collector drop accounting --------------------- *)

let test_collector_counts_dropped_pairs () =
  let prog = Helpers.random_program 21 in
  let collector = Collector.create prog in
  (* raw PMU-style samples whose addresses resolve to nothing: a stale
     layout.  Each pair carries weight 1; the repeat weights one pair 2. *)
  Collector.record_raw collector ~from_addr:123_456_789 ~to_addr:987_654_321;
  Collector.record_raw collector ~from_addr:123_456_789 ~to_addr:987_654_321;
  Collector.record_raw collector ~from_addr:max_int ~to_addr:max_int;
  let profile = Collector.lift collector in
  let stats = Collector.stats collector in
  Alcotest.(check int) "all weight dropped" 3 stats.Collector.dropped_pairs;
  Alcotest.(check int) "nothing lifted" 0 stats.Collector.lifted_pairs;
  Alcotest.(check int) "profile stays empty" 0
    (Profile.total_direct_weight profile + Profile.total_indirect_weight profile)

let test_collector_entry_hook () =
  let prog = Helpers.random_program 21 in
  let collector = Collector.create prog in
  (* top-level entries arrive through on_entry even when no call edge is
     ever recorded — the signal that survives total inlining *)
  Collector.hook_entry collector "f0";
  Collector.hook_entry collector "f0";
  Collector.hook_entry collector "f1";
  let profile = Collector.lift collector in
  Alcotest.(check int) "two entries for f0" 2 (Profile.invocations profile "f0");
  Alcotest.(check int) "one entry for f1" 1 (Profile.invocations profile "f1")

let suite =
  [
    ("counts accumulate", `Quick, test_counts_accumulate);
    ("value profile sorted", `Quick, test_value_profile_sorted);
    ("site weight keyed by origin", `Quick, test_site_weight_uses_origin);
    ("remove indirect target", `Quick, test_remove_indirect_target);
    ("merge", `Quick, test_merge);
    ("merge_weighted and scale", `Quick, test_merge_weighted);
    Helpers.qcheck_to_alcotest prop_serialization_roundtrip;
    Helpers.qcheck_to_alcotest prop_structured_roundtrip;
    Helpers.qcheck_to_alcotest prop_sharded_merge_matches_sequential;
    Helpers.qcheck_to_alcotest prop_unit_weight_merge_exact;
    Helpers.qcheck_to_alcotest prop_merge_weighted_commutes;
    ("empty profile round-trips", `Quick, test_empty_profile_roundtrip);
    ("of_string rejects garbage", `Quick, test_of_string_rejects_garbage);
    ("lbr drains on overflow and flush", `Quick, test_lbr_drains_on_overflow_and_flush);
    ("collector lift matches execution", `Quick, test_collector_lift_matches_execution);
    ("collector invocation counts", `Quick, test_collector_invocations_match);
    ("provenance round-trips", `Quick, test_provenance_roundtrip);
    ("provenance rejects garbage", `Quick, test_provenance_rejects_garbage);
    ("match_to: empty profile", `Quick, test_match_to_empty_profile);
    ("match_to: all sites vanished", `Quick, test_match_to_all_sites_vanished);
    ("match_to: site-id kind collision", `Quick, test_match_to_kind_collision);
    ("match_to: renames", `Quick, test_match_to_renames);
    Helpers.qcheck_to_alcotest prop_match_to_idempotent;
    ("collector counts dropped pairs", `Quick, test_collector_counts_dropped_pairs);
    ("collector entry hook", `Quick, test_collector_entry_hook);
  ]
