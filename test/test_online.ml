(* Continuous profiling: the store's decayed window, the drift metric and
   its hysteresis policy, the re-optimization controller, the end-to-end
   guarantees of the deployment simulator — no rebuilds on a steady
   workload, adaptation paying off on a phased one — and the fleet layer:
   jobs-count invariance, canary gating, and staged promotion. *)

module Profile = Pibe_profile.Profile
module Store = Pibe_online.Store
module Drift = Pibe_online.Drift
module Controller = Pibe_online.Controller
module Sim = Pibe_online.Sim
module Fleet = Pibe_online.Fleet
module Pool = Pibe_util.Pool
module Workload = Pibe_kernel.Workload

let profile_of assocs =
  let p = Profile.create () in
  List.iter
    (fun (origin, targets) ->
      List.iter (fun (target, count) -> Profile.add_indirect p ~origin ~target ~count) targets)
    assocs;
  p

(* ------------------------------- store ------------------------------ *)

let test_store_decay_and_eviction () =
  let store = Store.create ~window:2 ~decay:0.5 () in
  Alcotest.(check int) "empty" 0 (Store.length store);
  Alcotest.(check string) "empty merge" (Profile.to_string (Profile.create ()))
    (Profile.to_string (Store.merged store));
  let snap c = profile_of [ (1, [ ("t", c) ]) ] in
  Store.observe store (snap 100);
  Store.observe store (snap 200);
  Store.observe store (snap 400);
  Alcotest.(check int) "evicted beyond the window" 2 (Store.length store);
  (* newest (400) at weight 1, previous (200) at 0.5; the first snapshot
     is gone: 400 + 100 = 500 *)
  let merged = Store.merged store in
  Alcotest.(check int) "decayed weighted sum" 500
    (Profile.site_weight merged { Pibe_ir.Types.site_id = 1; site_origin = 1 });
  Store.clear store;
  Alcotest.(check int) "cleared" 0 (Store.length store)

let test_store_observe_copies () =
  let store = Store.create ~window:3 ~decay:1.0 () in
  let p = profile_of [ (7, [ ("t", 10) ]) ] in
  Store.observe store p;
  (* mutating the caller's profile afterwards must not leak into the ring *)
  Profile.add_indirect p ~origin:7 ~target:"t" ~count:990;
  Alcotest.(check int) "snapshot unaffected" 10
    (Profile.site_weight (Store.merged store) { Pibe_ir.Types.site_id = 7; site_origin = 7 })

let test_store_owned_and_snapshots () =
  let store = Store.create ~window:2 ~decay:0.5 () in
  let p = profile_of [ (3, [ ("t", 5) ]) ] in
  Store.observe_owned store p;
  (* ownership transfer: no defensive copy is taken, so a later mutation
     of the handed-over profile is visible in the ring (which is why the
     sim only uses it for profiles it never touches again) *)
  Profile.add_indirect p ~origin:3 ~target:"t" ~count:5;
  Alcotest.(check int) "no copy taken" 10
    (Profile.site_weight (Store.merged store) { Pibe_ir.Types.site_id = 3; site_origin = 3 });
  Store.observe_owned store (profile_of [ (3, [ ("t", 100) ]) ]);
  (match Store.weighted_snapshots store with
  | [ (w0, p0); (w1, p1) ] ->
    Alcotest.(check (float 1e-9)) "newest at weight 1" 1.0 w0;
    Alcotest.(check int) "newest snapshot first" 100
      (Profile.site_weight p0 { Pibe_ir.Types.site_id = 3; site_origin = 3 });
    Alcotest.(check (float 1e-9)) "older decayed" 0.5 w1;
    Alcotest.(check int) "older snapshot second" 10
      (Profile.site_weight p1 { Pibe_ir.Types.site_id = 3; site_origin = 3 })
  | snaps -> Alcotest.failf "expected 2 snapshots, got %d" (List.length snaps));
  (* ring slots are reused, not reallocated: a third observe evicts the
     oldest and the merged view follows *)
  Store.observe_owned store (profile_of [ (3, [ ("t", 1000) ]) ]);
  Alcotest.(check int) "still full" 2 (Store.length store);
  Alcotest.(check int) "oldest evicted from the merge" 1050
    (Profile.site_weight (Store.merged store) { Pibe_ir.Types.site_id = 3; site_origin = 3 })

let test_store_validation () =
  Alcotest.check_raises "window 0" (Invalid_argument "Store.create: window must be >= 1")
    (fun () -> ignore (Store.create ~window:0 ~decay:0.5 ()));
  Alcotest.check_raises "decay 0" (Invalid_argument "Store.create: decay must be in (0, 1]")
    (fun () -> ignore (Store.create ~window:3 ~decay:0.0 ()));
  Alcotest.check_raises "decay > 1" (Invalid_argument "Store.create: decay must be in (0, 1]")
    (fun () -> ignore (Store.create ~window:3 ~decay:1.5 ()))

(* ------------------------------- drift ------------------------------ *)

let test_distance_properties () =
  let a = profile_of [ (1, [ ("x", 90); ("y", 10) ]); (2, [ ("z", 50) ]) ] in
  let b = profile_of [ (3, [ ("u", 40) ]); (4, [ ("v", 60) ]) ] in
  Alcotest.(check (float 1e-9)) "identical profiles" 0.0 (Drift.distance a a);
  Alcotest.(check (float 1e-9)) "both empty" 0.0
    (Drift.distance (Profile.create ()) (Profile.create ()));
  Alcotest.(check (float 1e-9)) "disjoint profiles" 1.0 (Drift.distance a b);
  Alcotest.(check (float 1e-9)) "symmetric" (Drift.distance a b) (Drift.distance b a);
  (* magnitude invariance: scaling every count leaves the distance alone *)
  let scaled = Profile.scale a 3.0 in
  Alcotest.(check (float 1e-9)) "scale invariant" 0.0 (Drift.distance a scaled);
  let d = Drift.distance a (profile_of [ (1, [ ("x", 10); ("y", 90) ]) ]) in
  Alcotest.(check bool) "partial drift strictly inside (0, 1)" true (d > 0.0 && d < 1.0)

let test_detector_hysteresis () =
  let det = Drift.detector ~threshold:0.5 ~hysteresis:2 in
  Alcotest.(check bool) "first suspect" true (Drift.observe det 0.6 = Drift.Suspect 1);
  Alcotest.(check bool) "second fires" true (Drift.observe det 0.6 = Drift.Fire);
  (* streak resets after a fire: the next window starts a new streak *)
  Alcotest.(check bool) "post-fire restart" true (Drift.observe det 0.7 = Drift.Suspect 1);
  (* a stable window breaks the streak: no fire on alternating noise *)
  Alcotest.(check bool) "stable resets" true (Drift.observe det 0.2 = Drift.Stable);
  Alcotest.(check bool) "back to one" true (Drift.observe det 0.9 = Drift.Suspect 1);
  Alcotest.(check bool) "still no fire" true (Drift.observe det 0.9 = Drift.Fire);
  Drift.reset det;
  Alcotest.(check bool) "reset clears the streak" true
    (Drift.observe det 0.9 = Drift.Suspect 1)

(* ---------------------------- controller ---------------------------- *)

let quick_spec () =
  Pibe.Pipeline.spec_of_config (Pibe.Exp_common.best_config Pibe.Exp_common.all_defenses)

let test_controller_identical_rebuild_is_free () =
  let env = Helpers.env () in
  let prog = (Pibe.Env.info env).Pibe_kernel.Gen.prog in
  let profile = Pibe.Env.lmbench_profile env in
  match Controller.create ~prog ~spec:(quick_spec ()) ~profile () with
  | Error e -> Alcotest.failf "controller: %s" e
  | Ok c ->
    Alcotest.(check int) "no rebuilds yet" 0 (Controller.rebuilds c);
    (* same profile -> same image -> zero changed functions -> no downtime *)
    let cycles = Controller.reoptimize c profile in
    Alcotest.(check int) "identical rebuild costs nothing" 0 cycles;
    Alcotest.(check int) "but is counted" 1 (Controller.rebuilds c);
    Alcotest.(check int) "no cycles accumulated" 0 (Controller.total_patch_cycles c)

let test_controller_rejects_bad_spec () =
  let env = Helpers.env () in
  let prog = (Pibe.Env.info env).Pibe_kernel.Gen.prog in
  let profile = Pibe.Env.lmbench_profile env in
  match
    Controller.create ~prog
      ~spec:[ Pibe_pm.Spec.elem "mystery" ]
      ~profile ()
  with
  | Error e ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i =
        i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "names the pass" true (contains e "mystery")
  | Ok _ -> Alcotest.fail "unknown pass accepted"

(* ------------------------------- sim -------------------------------- *)

let sim_config =
  {
    Sim.default_config with
    Sim.requests_per_window = 25;
    store_window = 2;
    hysteresis = 2;
  }

let run_sim ?(config = sim_config) ~adaptive ~phases env =
  let prog = (Pibe.Env.info env).Pibe_kernel.Gen.prog in
  let training = Pibe.Env.lmbench_profile env in
  match
    Sim.run ~config ~adaptive ~prog ~spec:(quick_spec ()) ~training ~phases ()
  with
  | Ok o -> o
  | Error e -> Alcotest.failf "sim: %s" e

let test_steady_workload_never_fires () =
  let env = Helpers.env () in
  let info = Pibe.Env.info env in
  (* the deployed image was trained on LMBench; a steady LMBench stream
     must never trip the detector, adaptive or not *)
  let phases = [ (Workload.lmbench_phase info, 6) ] in
  let o = run_sim ~adaptive:true ~phases env in
  Alcotest.(check int) "no rebuilds" 0 o.Sim.rebuilds;
  Alcotest.(check int) "no downtime" 0 o.Sim.total_patch_cycles;
  List.iter
    (fun (w : Sim.window_record) ->
      Alcotest.(check bool)
        (Printf.sprintf "window %d under threshold" w.Sim.index)
        true
        (w.Sim.distance < sim_config.Sim.drift_threshold && not w.Sim.fired))
    o.Sim.windows

let test_phased_workload_adapts () =
  let env = Helpers.env () in
  let info = Pibe.Env.info env in
  let phases =
    [ (Workload.lmbench_phase info, 2); (Workload.phase_of_mix (Workload.dbench info), 6) ]
  in
  let adaptive = run_sim ~adaptive:true ~phases env in
  let static = run_sim ~adaptive:false ~phases env in
  Alcotest.(check bool) "rebuilds happened" true (adaptive.Sim.rebuilds >= 1);
  Alcotest.(check bool) "downtime charged" true (adaptive.Sim.total_patch_cycles > 0);
  (* adaptation must pay for itself: fewer total cycles than staying on
     the stale image, even with the patch downtime charged *)
  Alcotest.(check bool) "adaptive beats stale overall" true
    (adaptive.Sim.total_cycles < static.Sim.total_cycles);
  (* both variants replayed byte-identical request streams: before any
     rebuild the cycle counts agree window for window *)
  let first_fire =
    List.fold_left
      (fun acc (w : Sim.window_record) ->
        match acc with Some _ -> acc | None -> if w.Sim.fired then Some w.Sim.index else None)
      None adaptive.Sim.windows
  in
  match first_fire with
  | None -> Alcotest.fail "no window fired"
  | Some fire_idx ->
    List.iter2
      (fun (a : Sim.window_record) (s : Sim.window_record) ->
        if a.Sim.index <= fire_idx then
          Alcotest.(check int)
            (Printf.sprintf "window %d cycles agree pre-swap" a.Sim.index)
            s.Sim.cycles a.Sim.cycles)
      adaptive.Sim.windows static.Sim.windows

let test_sim_deterministic () =
  let env = Helpers.env () in
  let info = Pibe.Env.info env in
  let phases =
    [ (Workload.lmbench_phase info, 1); (Workload.phase_of_mix (Workload.apache info), 3) ]
  in
  let a = run_sim ~adaptive:true ~phases env in
  let b = run_sim ~adaptive:true ~phases env in
  Alcotest.(check bool) "outcome reproduced exactly" true (a = b)

let test_sim_abort_preserves_windows () =
  let env = Helpers.env () in
  let info = Pibe.Env.info env in
  let base = Workload.lmbench_phase info in
  (* Every window replays the stream twice (deployed + profiler), so with
     25 requests/window the 120th request call lands inside window 2: two
     windows must complete, the third must abort. *)
  let calls = ref 0 in
  let bomb =
    {
      Workload.phase_name = "bomb";
      request =
        (fun eng rng ->
          incr calls;
          if !calls = 120 then failwith "boom";
          base.Workload.request eng rng);
    }
  in
  let o = run_sim ~adaptive:false ~phases:[ (bomb, 6) ] env in
  Alcotest.(check int) "completed windows retained" 2 (List.length o.Sim.windows);
  (match o.Sim.aborted with
  | Some msg ->
    Alcotest.(check bool) "abort reason surfaced" true
      (String.length msg > 0
      && String.equal (Printexc.to_string (Failure "boom")) msg)
  | None -> Alcotest.fail "abort not reported");
  (* the retained records stay internally consistent *)
  Alcotest.(check int) "totals cover retained windows only"
    (List.fold_left (fun acc (w : Sim.window_record) -> acc + w.Sim.cycles) 0 o.Sim.windows)
    o.Sim.total_cycles;
  List.iteri
    (fun i (w : Sim.window_record) ->
      Alcotest.(check int) (Printf.sprintf "window %d indexed" i) i w.Sim.index)
    o.Sim.windows

(* ------------------------------- fleet ------------------------------ *)

let fleet_config =
  {
    Fleet.default_config with
    Fleet.instances = 6;
    windows = 6;
    requests_per_window = 30;
  }

let run_fleet ?(config = fleet_config) ?pool ~adaptive env =
  let info = Pibe.Env.info env in
  let prog = info.Pibe_kernel.Gen.prog in
  let training = Pibe.Env.lmbench_profile env in
  let phases = Workload.standard_phases info in
  match
    Fleet.run ~config ?pool ~adaptive ~prog ~spec:(quick_spec ()) ~training ~phases ()
  with
  | Ok o -> o
  | Error e -> Alcotest.failf "fleet: %s" e

let test_fleet_jobs_invariant () =
  let env = Helpers.env () in
  let sequential = run_fleet ~adaptive:true env in
  let pool = Pool.create ~jobs:4 () in
  let parallel = run_fleet ~pool ~adaptive:true env in
  Alcotest.(check bool) "outcome identical at jobs 1 vs 4" true (sequential = parallel);
  Alcotest.(check (option string)) "clean run" None sequential.Fleet.aborted;
  (* the heterogeneous schedules actually are heterogeneous: odd
     instances run blended mixes *)
  (match sequential.Fleet.instances with
  | _ :: (second : Fleet.instance_record) :: _ ->
    Alcotest.(check bool) "odd instance runs a blend" true
      (String.contains second.Fleet.inst_mix '+')
  | _ -> Alcotest.fail "expected at least 2 instances")

let test_fleet_steady_never_fires () =
  let env = Helpers.env () in
  let info = Pibe.Env.info env in
  let prog = info.Pibe_kernel.Gen.prog in
  let training = Pibe.Env.lmbench_profile env in
  (* one steady phase: no instance's mix ever departs from the training
     workload, so the aggregate must never drift *)
  match
    Fleet.run ~config:fleet_config ~adaptive:true ~prog ~spec:(quick_spec ()) ~training
      ~phases:[ Workload.lmbench_phase info ] ()
  with
  | Error e -> Alcotest.failf "fleet: %s" e
  | Ok o ->
    Alcotest.(check int) "no rebuilds" 0 o.Fleet.rebuilds;
    Alcotest.(check int) "no rollouts" 0 (List.length o.Fleet.rollouts);
    Alcotest.(check int) "no downtime" 0 o.Fleet.total_patch_cycles;
    List.iter
      (fun (r : Fleet.instance_record) ->
        Alcotest.(check int)
          (Printf.sprintf "instance %d never patched" r.Fleet.inst_id)
          0 r.Fleet.inst_patches)
      o.Fleet.instances

let test_fleet_staged_promotion () =
  let env = Helpers.env () in
  let o = run_fleet ~adaptive:true env in
  Alcotest.(check (option string)) "clean run" None o.Fleet.aborted;
  Alcotest.(check bool) "drift fired" true (o.Fleet.rebuilds >= 1);
  let promoted =
    List.filter (fun (r : Fleet.rollout) -> r.Fleet.ro_status = Fleet.Promoted) o.Fleet.rollouts
  in
  Alcotest.(check bool) "at least one promotion" true (promoted <> []);
  List.iter
    (fun (r : Fleet.rollout) ->
      Alcotest.(check int) "canary is instance 0" 0 r.Fleet.ro_canary;
      Alcotest.(check bool) "decision after firing" true (r.Fleet.ro_decided > r.Fleet.ro_fired))
    promoted;
  (* promotion patched every instance, and each paid its own downtime *)
  List.iter
    (fun (r : Fleet.instance_record) ->
      Alcotest.(check bool)
        (Printf.sprintf "instance %d patched" r.Fleet.inst_id)
        true
        (r.Fleet.inst_patches >= 1 && r.Fleet.inst_patch_cycles > 0))
    o.Fleet.instances;
  (* the batched aggregator ran: one detection merge per steady window at
     least, each consuming every live shard snapshot *)
  Alcotest.(check bool) "merges happened" true (o.Fleet.merges > 0);
  Alcotest.(check bool) "merges are batched" true
    (o.Fleet.profiles_merged >= o.Fleet.merges * fleet_config.Fleet.instances)

let test_fleet_canary_gates_rollout () =
  let env = Helpers.env () in
  (* a negative tolerance makes the canary evaluation unpassable: drift
     still fires and patches the canary, but the fleet must never be *)
  let config = { fleet_config with Fleet.promote_tolerance_pct = -100.0 } in
  let o = run_fleet ~config ~adaptive:true env in
  Alcotest.(check bool) "drift fired" true (o.Fleet.rebuilds >= 1);
  Alcotest.(check bool) "rollouts recorded" true (o.Fleet.rollouts <> []);
  List.iter
    (fun (r : Fleet.rollout) ->
      Alcotest.(check string) "every rollout rejected" "rejected"
        (Fleet.rollout_status_name r.Fleet.ro_status))
    o.Fleet.rollouts;
  List.iter
    (fun (r : Fleet.instance_record) ->
      if r.Fleet.inst_id = 0 then
        (* the canary was patched to the candidate and rolled back *)
        Alcotest.(check bool) "canary patched and rolled back" true
          (r.Fleet.inst_patches >= 2)
      else
        Alcotest.(check int)
          (Printf.sprintf "instance %d untouched" r.Fleet.inst_id)
          0 r.Fleet.inst_patches)
    o.Fleet.instances

let suite =
  [
    ("store decay and eviction", `Quick, test_store_decay_and_eviction);
    ("store ring ownership and snapshots", `Quick, test_store_owned_and_snapshots);
    ("store snapshots are copies", `Quick, test_store_observe_copies);
    ("store validates parameters", `Quick, test_store_validation);
    ("drift distance properties", `Quick, test_distance_properties);
    ("detector hysteresis", `Quick, test_detector_hysteresis);
    ("controller: identical rebuild is free", `Slow, test_controller_identical_rebuild_is_free);
    ("controller rejects bad specs", `Quick, test_controller_rejects_bad_spec);
    ("steady workload never fires", `Slow, test_steady_workload_never_fires);
    ("phased workload adapts", `Slow, test_phased_workload_adapts);
    ("simulation is deterministic", `Slow, test_sim_deterministic);
    ("abort keeps completed windows", `Slow, test_sim_abort_preserves_windows);
    ("fleet outcome independent of jobs", `Slow, test_fleet_jobs_invariant);
    ("fleet steady workload never fires", `Slow, test_fleet_steady_never_fires);
    ("fleet staged promotion", `Slow, test_fleet_staged_promotion);
    ("fleet canary gates rollout", `Slow, test_fleet_canary_gates_rollout);
  ]
