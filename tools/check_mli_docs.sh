#!/bin/sh
# Documentation lint: every public module in lib/ must open with a
# top-level odoc summary comment.
#
#  - every .mli under lib/ must start with "(**" on its first line;
#  - every .ml under lib/ *without* a companion .mli (interface-free data
#    modules like lib/ir/types.ml) must itself start with "(**".
#
# This is the part of `make docs` that runs everywhere; the odoc build
# itself is gated on the tool being installed (see the Makefile).
set -u
cd "$(dirname "$0")/.."

fail=0
for f in lib/*/*.mli; do
  case "$(head -c 3 "$f")" in
    "(**") ;;
    *)
      echo "missing top-level doc comment: $f" >&2
      fail=1
      ;;
  esac
done

for f in lib/*/*.ml; do
  mli="${f}i"
  if [ ! -f "$mli" ]; then
    case "$(head -c 3 "$f")" in
      "(**") ;;
      *)
        echo "missing top-level doc comment (no .mli): $f" >&2
        fail=1
        ;;
    esac
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "doc lint failed: add a top-level (** ... *) summary to the files above" >&2
  exit 1
fi
echo "doc lint: every public module in lib/ has a top-level doc comment"
