#!/bin/sh
# Interleaved A/B benchmark protocol for the bench harness.
#
# The measurement hosts drift by tens of percent over minutes, so
# back-to-back "all of A, then all of B" runs are worthless.  This
# script interleaves the two sides in alternating batches within one
# sequential process stream — per batch it runs A then B, each side
# doing WARMUPS+RUNS warm re-runs of the selected experiment via the
# harness's `--time` mode (which prints one `time <id> <i> <secs>` line
# per re-run after a warm-up pass) — then pools the per-side samples
# across batches and reports the median of each pool plus the ratio.
#
# Usage:
#   tools/bench_compare.sh OLD_EXE NEW_EXE EXPERIMENT_ID [extra args...]
#
#   OLD_EXE / NEW_EXE   bench/main.exe binaries for the two trees, e.g.
#                       a baseline worktree's _build/default/bench/main.exe
#                       and this tree's.
#   EXPERIMENT_ID       experiment id as listed by `pibe experiment list`
#                       (e.g. table1, sensitivity, online, fleet — the
#                       fleet experiment times the whole sharded-merge +
#                       staged-rollout pipeline; pair it with --jobs N to
#                       compare parallel configurations).
#   extra args          forwarded to both sides (e.g. --quick, --jobs 4).
#
# Knobs (environment): BATCHES (default 3), RUNS (default 3, timed
# re-runs per side per batch).  Output: per-batch sample lines, then a
# JSON fragment on stdout suitable for pasting into a BENCH_PR*.json
# "experiments" entry.
#
# Null control (A/A): pass the SAME binary as both OLD_EXE and NEW_EXE
# to measure the protocol's noise floor on the current host — the
# reported "speedup" of an A/A run is pure drift, and no A/B ratio
# closer to 1.0 than that deviation is resolvable at the same BATCHES
# x RUNS.  Record the null control next to any headline number
# (BENCH_PR10.json does this for table1).
#
# Comparing execution-tier settings (PR 10 protocol): the dispatch
# knobs --tierup/--callfuse/--tier3 must NOT be passed as extra args
# when the OLD side predates them (an unknown flag exits 2 and the old
# sample pool comes out empty).  Use the environment instead — both
# sides read PIBE_TIERUP, and a NEW-side binary additionally reads
# PIBE_CALLFUSE / PIBE_TIER3 while an old binary silently ignores
# them, so
#
#   PIBE_CALLFUSE=256 PIBE_TIER3=4096 \
#     tools/bench_compare.sh old/bench/main.exe _build/default/bench/main.exe table1
#
# compares old defaults against the new tiers under one interleaved
# stream.  To build the OLD side without disturbing this tree:
#   git worktree add /tmp/pr9 <baseline-commit>
#   (cd /tmp/pr9 && dune build bench/main.exe)
# and pass /tmp/pr9/_build/default/bench/main.exe as OLD_EXE.
set -eu

if [ $# -lt 3 ]; then
  echo "usage: $0 OLD_EXE NEW_EXE EXPERIMENT_ID [extra args...]" >&2
  exit 2
fi

OLD_EXE=$1
NEW_EXE=$2
ID=$3
shift 3

BATCHES=${BATCHES:-3}
RUNS=${RUNS:-3}

for exe in "$OLD_EXE" "$NEW_EXE"; do
  if [ ! -x "$exe" ]; then
    echo "error: $exe is not an executable" >&2
    exit 2
  fi
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# One side of one batch runs the harness in --time mode and keeps only
# the per-re-run second counts for the requested experiment.
b=1
while [ "$b" -le "$BATCHES" ]; do
  "$OLD_EXE" --only "$ID" --time "$RUNS" "$@" 2>/dev/null </dev/null \
    | awk -v id="$ID" '$1 == "time" && $2 == id { print $4 }' >>"$tmp/old"
  "$NEW_EXE" --only "$ID" --time "$RUNS" "$@" 2>/dev/null </dev/null \
    | awk -v id="$ID" '$1 == "time" && $2 == id { print $4 }' >>"$tmp/new"
  echo "batch $b/$BATCHES done: old=[$(paste -sd, "$tmp/old")] new=[$(paste -sd, "$tmp/new")]" >&2
  b=$((b + 1))
done

median() { # $1 file
  sort -g "$1" | awk '{ a[NR] = $1 }
    END {
      if (NR == 0) { print "nan"; exit 1 }
      if (NR % 2) print a[(NR + 1) / 2]
      else printf "%.6f\n", (a[NR / 2] + a[NR / 2 + 1]) / 2
    }'
}

old_med=$(median "$tmp/old")
new_med=$(median "$tmp/new")
ratio=$(awk -v o="$old_med" -v n="$new_med" 'BEGIN { printf "%.3f", o / n }')

cat <<EOF
{
  "id": "$ID",
  "batches": $BATCHES,
  "runs_per_side_per_batch": $RUNS,
  "old_samples_s": [$(paste -sd, "$tmp/old")],
  "new_samples_s": [$(paste -sd, "$tmp/new")],
  "old_median_s": $old_med,
  "new_median_s": $new_med,
  "speedup": $ratio
}
EOF
