(* Quickstart: the whole PIBE pipeline on a ten-line toy program.

   We build a tiny "application" with one indirect call dispatching over
   two handlers, profile it, let PIBE promote the hot target and inline
   the hot helper, harden what remains with every transient defense, and
   compare simulated cycles.

   Run with:  dune exec examples/quickstart.exe *)

open Pibe_ir
open Types

let build_toy () =
  let prog = Program.with_globals_size Program.empty 16 in
  (* Two handlers reachable through a function-pointer cell. *)
  let handler name bias =
    let b = Builder.create ~name ~params:1 in
    let a = Builder.param b 0 in
    let r = Builder.reg b in
    Builder.assign b r (Binop (Add, Reg a, Imm bias));
    Builder.observe b (Reg r);
    Builder.ret b (Some (Reg r));
    Builder.finish b ()
  in
  let prog = Program.add_func prog (handler "handle_fast" 1) in
  let prog = Program.add_func prog (handler "handle_slow" 1000) in
  let prog, fast_idx = Program.add_fptr prog "handle_fast" in
  let prog, _slow_idx = Program.add_fptr prog "handle_slow" in
  (* A helper worth inlining. *)
  let prog =
    let b = Builder.create ~name:"checksum" ~params:1 in
    let a = Builder.param b 0 in
    let r = Builder.reg b in
    Builder.assign b r (Binop (Xor, Reg a, Imm 0x5a));
    Builder.ret b (Some (Reg r));
    Program.add_func prog (Builder.finish b ())
  in
  (* main(x): h = load dispatch_cell; r = icall h(x); checksum(r) *)
  let prog, icall_site = Program.fresh_site prog in
  let prog, call_site = Program.fresh_site prog in
  let b = Builder.create ~name:"main" ~params:1 in
  let x = Builder.param b 0 in
  let h = Builder.reg b in
  Builder.assign b h (Load (Imm 0));
  let r = Builder.reg b in
  Builder.icall b ~dst:r icall_site [ Reg x ] ~fptr:(Reg h);
  let c = Builder.reg b in
  Builder.call b ~dst:c call_site "checksum" [ Reg r ];
  Builder.ret b (Some (Reg c));
  let prog = Program.add_func prog (Builder.finish b ()) in
  let prog = Program.set_global prog ~addr:0 ~value:fast_idx in
  Validate.check_exn prog;
  prog

let cycles_of image =
  let engine =
    Pibe_cpu.Engine.create
      ~config:(Pibe_harden.Pass.engine_config image)
      image.Pibe_harden.Pass.prog
  in
  for i = 1 to 1000 do
    ignore (Pibe_cpu.Engine.call engine "main" [ i ])
  done;
  Pibe_cpu.Engine.cycles engine

let () =
  let prog = build_toy () in
  print_endline "--- the toy program ---";
  print_string (Printer.func_to_string (Program.find prog "main"));
  (* Phase 1: profile. *)
  let profile =
    Pibe.Pipeline.profile prog ~run:(fun engine ->
        for i = 1 to 100 do
          ignore (Pibe_cpu.Engine.call engine "main" [ i ])
        done)
  in
  (* Phase 2: optimize + harden. *)
  let all = Pibe_harden.Pass.all_defenses in
  let unopt = Pibe.Pipeline.build prog profile (Pibe.Exp_common.lto_with all) in
  let opt =
    Pibe.Pipeline.build prog profile
      (Pibe.Exp_common.full_opt ~icp:99.0 ~inline:99.0 all)
  in
  print_endline "\n--- main after promotion + inlining ---";
  print_string
    (Printer.func_to_string (Program.find opt.Pibe.Pipeline.image.Pibe_harden.Pass.prog "main"));
  let c_unopt = cycles_of unopt.Pibe.Pipeline.image in
  let c_opt = cycles_of opt.Pibe.Pipeline.image in
  Printf.printf
    "\nall defenses, 1000 runs:\n  unoptimized: %d cycles\n  PIBE:        %d cycles (%.1f%% less)\n"
    c_unopt c_opt
    (100.0 *. float_of_int (c_unopt - c_opt) /. float_of_int c_unopt)
