(* Transient control-flow hijacking, live: poison the predictors, run a
   victim syscall, and watch whether the leak gadget executes transiently
   — then turn on the defenses and watch it stop.

   Run with:  dune exec examples/attack_demo.exe *)

module Engine = Pibe_cpu.Engine
module Attack = Pibe_cpu.Attack
module Pass = Pibe_harden.Pass

let drill label env config =
  let info = Pibe.Env.info env in
  let built = Pibe.Env.build env config in
  Printf.printf "\n=== %s ===\n" label;
  let spec = Pibe_cpu.Speculation.create () in
  let engine_config =
    { (Pass.engine_config built.Pibe.Pipeline.image) with Engine.speculation = Some spec }
  in
  let fresh () = Engine.create ~config:engine_config built.Pibe.Pipeline.image.Pass.prog in
  let gadget = info.Pibe_kernel.Gen.gadget in
  let entry = info.Pibe_kernel.Gen.entry in
  let args = [ Pibe_kernel.Gen.nr info "read"; 0; 5 ] in
  let show mechanism (o : Attack.outcome) =
    Printf.printf "  %-10s -> %s\n" mechanism
      (if o.Attack.gadget_reached then
         Printf.sprintf "TRANSIENTLY EXECUTED @%s (secret observable via cache side channel)"
           gadget
       else "no attacker-controlled transient execution")
  in
  show "spectre-v2"
    (Attack.spectre_v2 (fresh ())
       ~victim_site:info.Pibe_kernel.Gen.victim_icall_site ~gadget ~entry ~args);
  show "ret2spec"
    (Attack.ret2spec (fresh ()) ~scenario:Pibe_cpu.Speculation.User_pollution ~gadget
       ~entry ~args);
  show "lvi"
    (Attack.lvi (fresh ())
       ~poisoned_addr:info.Pibe_kernel.Gen.victim_ops_addr
       ~injected_fptr:info.Pibe_kernel.Gen.gadget_fptr ~entry ~args)

let () =
  let env = Pibe.Env.create ~scale:1 () in
  Printf.printf
    "victim: the indirect dispatch inside vfs_read; gadget: a function that\n\
     loads and observes the kernel secret. An attack \"succeeds\" when the\n\
     gadget runs transiently under attacker control.\n";
  drill "vanilla kernel, no defenses" env (Pibe.Exp_common.lto_with Pass.no_defenses);
  drill "retpolines only (stops V2, not RSB/LVI)" env
    (Pibe.Exp_common.lto_with Pibe.Exp_common.retpolines_only);
  drill "all transient defenses" env (Pibe.Exp_common.lto_with Pass.all_defenses);
  drill "all defenses + PIBE optimization" env
    (Pibe.Exp_common.best_config Pass.all_defenses)
