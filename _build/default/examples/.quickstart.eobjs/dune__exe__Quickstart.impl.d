examples/quickstart.ml: Builder Pibe Pibe_cpu Pibe_harden Pibe_ir Printer Printf Program Types Validate
