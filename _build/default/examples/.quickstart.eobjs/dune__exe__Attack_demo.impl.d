examples/attack_demo.ml: Pibe Pibe_cpu Pibe_harden Pibe_kernel Printf
