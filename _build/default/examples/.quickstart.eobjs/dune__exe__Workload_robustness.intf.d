examples/workload_robustness.mli:
