examples/where_do_cycles_go.mli:
