examples/workload_robustness.ml: Pibe Pibe_util
