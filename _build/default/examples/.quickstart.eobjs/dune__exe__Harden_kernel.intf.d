examples/harden_kernel.mli:
