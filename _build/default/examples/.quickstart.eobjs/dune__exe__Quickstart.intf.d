examples/quickstart.mli:
