examples/where_do_cycles_go.ml: Pibe Pibe_harden Pibe_kernel Pibe_util Printf
