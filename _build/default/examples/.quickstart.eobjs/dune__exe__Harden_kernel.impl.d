examples/harden_kernel.ml: List Pibe Pibe_harden Pibe_ir Pibe_kernel Pibe_opt Pibe_util Printf
