(* Where does the defense tax actually land?

   Flat-profiles the read syscall under full defenses, before and after
   PIBE.  Before: the dispatch helpers (vfs_read, security_check, the fs
   implementation chain) each pay for their hardened branches.  After:
   the hot path has been merged into one inlined region — only the cold
   filesystem tails remain as separate (still fully protected)
   functions.

   Run with:  dune exec examples/where_do_cycles_go.exe *)

let () =
  let env = Pibe.Env.create ~scale:1 () in
  let info = Pibe.Env.info env in
  let op = Pibe_kernel.Workload.lmbench_op info "read" in
  let run engine =
    let rng = Pibe_util.Rng.create 7 in
    for _ = 1 to 200 do
      op.Pibe_kernel.Workload.run engine rng
    done
  in
  let show label config =
    let built = Pibe.Env.build env config in
    let p =
      Pibe.Perf.profile
        (Pibe_harden.Pass.engine_config built.Pibe.Pipeline.image)
        built.Pibe.Pipeline.image.Pibe_harden.Pass.prog ~run
    in
    Printf.printf "\n=== %s: %d cycles for 200 reads ===\n" label (Pibe.Perf.total_cycles p);
    Pibe_util.Tbl.print (Pibe.Perf.to_table ~n:10 p)
  in
  let all = Pibe_harden.Pass.all_defenses in
  show "all defenses, unoptimized" (Pibe.Exp_common.lto_with all);
  show "all defenses, PIBE" (Pibe.Exp_common.best_config all);
  print_endline
    "Note how the per-helper self-cycles (each inflated by its fenced\n\
     retpolines and return retpolines) collapse into the inlined entry\n\
     region, leaving only cold, rarely-executed functions standing."
