(* Paper section 8.4 as an example: does the profile's workload matter?

   We train the all-defenses kernel on the "wrong" workload (an
   ApacheBench-style server load), then measure LMBench anyway — and
   compare against the matched profile, the default LLVM inliner, and no
   optimization at all.

   Run with:  dune exec examples/workload_robustness.exe *)

let () =
  let env = Pibe.Env.create ~scale:2 () in
  let overlap, table = Pibe.Exp_robustness.run env in
  Pibe_util.Tbl.print overlap;
  Pibe_util.Tbl.print table;
  print_endline
    "Reading the table: a mismatched profile still removes most of the overhead\n\
     because hot kernel paths (read/write/dispatch) are hot under any workload;\n\
     the weight-blind default inliner is worse than a weight-ordered walk even\n\
     with the right profile."
