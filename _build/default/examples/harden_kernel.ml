(* The paper's headline experiment as an example: generate the synthetic
   kernel, train on LMBench, and compare an all-defenses image with and
   without PIBE's profile-guided branch elimination.

   Run with:  dune exec examples/harden_kernel.exe *)

let () =
  let env = Pibe.Env.create ~scale:2 () in
  let all = Pibe_harden.Pass.all_defenses in
  let unopt = Pibe.Exp_common.lto_with all in
  let pibe = Pibe.Exp_common.best_config all in
  Printf.printf "generating kernel (%d functions)...\n%!"
    (Pibe_ir.Program.func_count (Pibe.Env.info env).Pibe_kernel.Gen.prog);
  let tbl =
    Pibe_util.Tbl.create ~title:"All transient defenses: overhead vs the vanilla LTO kernel"
      ~columns:[ "test"; "no optimization"; "PIBE" ]
  in
  let unopt_ov = Pibe.Env.overheads env ~baseline:Pibe.Config.lto unopt in
  let pibe_ov = Pibe.Env.overheads env ~baseline:Pibe.Config.lto pibe in
  List.iter2
    (fun (name, a) (_, b) ->
      Pibe_util.Tbl.add_row tbl
        [ Pibe_util.Tbl.Str name; Pibe_util.Tbl.Pct a; Pibe_util.Tbl.Pct b ])
    unopt_ov pibe_ov;
  Pibe_util.Tbl.add_separator tbl;
  Pibe_util.Tbl.add_row tbl
    [
      Pibe_util.Tbl.Str "Geometric Mean";
      Pibe_util.Tbl.Pct (Pibe_util.Stats.geomean_overhead (List.map snd unopt_ov));
      Pibe_util.Tbl.Pct (Pibe_util.Stats.geomean_overhead (List.map snd pibe_ov));
    ];
  Pibe_util.Tbl.print tbl;
  (* What did the passes actually do? *)
  let built = Pibe.Env.build env pibe in
  (match built.Pibe.Pipeline.icp_stats with
  | Some s ->
    Printf.printf "promotion: %d targets across %d sites (%.1f%% of indirect weight)\n"
      s.Pibe_opt.Icp.promoted_targets s.Pibe_opt.Icp.promoted_sites
      (Pibe_util.Stats.ratio_pct ~num:s.Pibe_opt.Icp.promoted_weight
         ~den:s.Pibe_opt.Icp.total_weight)
  | None -> ());
  (match built.Pibe.Pipeline.inline_stats with
  | Some s ->
    Printf.printf "inlining:  %d call sites (%.1f%% of backward-edge weight elided)\n"
      s.Pibe_opt.Inliner.inlined_sites
      (Pibe_util.Stats.ratio_pct ~num:s.Pibe_opt.Inliner.inlined_weight
         ~den:s.Pibe_opt.Inliner.total_weight)
  | None -> ());
  let audit = Pibe_harden.Audit.run built.Pibe.Pipeline.image in
  Printf.printf
    "audit:     %d indirect calls behind fenced retpolines; %d untouchable asm calls remain\n"
    audit.Pibe_harden.Audit.defended_icalls audit.Pibe_harden.Audit.asm_icalls;
  let lto_bytes =
    Pibe_harden.Pass.image_bytes (Pibe.Env.build env Pibe.Config.lto).Pibe.Pipeline.image
  in
  let bytes = Pibe_harden.Pass.image_bytes built.Pibe.Pipeline.image in
  Printf.printf "image:     %d bytes (%+.1f%% vs vanilla)\n" bytes
    (Pibe_util.Stats.overhead_pct ~baseline:(float_of_int lto_bytes) (float_of_int bytes))
