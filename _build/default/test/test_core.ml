(* The core library's non-experiment pieces: configuration naming, the
   measurement harness, environment caching, and the reproduction
   report. *)

module Stats = Pibe_util.Stats

let test_config_names () =
  Alcotest.(check string) "lto" "none no-opt" (Pibe.Config.name Pibe.Config.lto);
  let full =
    {
      Pibe.Config.defenses = Pibe_harden.Pass.all_defenses;
      opt = Pibe.Config.Full { icp_budget = 99.0; inline_budget = 99.9; lax = true };
    }
  in
  Alcotest.(check string) "full" "all-defenses icp(99%)+inlining(99.9%)+lax"
    (Pibe.Config.name full);
  Alcotest.(check string) "icp"
    "retpolines icp(99.999%)"
    (Pibe.Config.name (Pibe.Exp_common.icp_only ~budget:99.999 Pibe.Exp_common.retpolines_only))

let test_best_config_shape () =
  (match Pibe.Exp_common.best_config Pibe.Exp_common.retpolines_only with
  | { Pibe.Config.opt = Pibe.Config.Icp_only _; _ } -> ()
  | _ -> Alcotest.fail "retpolines-only should use ICP only");
  match Pibe.Exp_common.best_config Pibe.Exp_common.all_defenses with
  | { Pibe.Config.opt = Pibe.Config.Full { lax = true; _ }; _ } -> ()
  | _ -> Alcotest.fail "all defenses should use the lax full configuration"

let test_measure_deterministic () =
  let env = Helpers.env () in
  let built = Pibe.Env.build env Pibe.Config.lto in
  let op = Pibe_kernel.Workload.lmbench_op (Pibe.Env.info env) "read" in
  let run () =
    Pibe.Measure.op_latency ~settings:Pibe.Measure.quick_settings
      (Pibe.Pipeline.engine built) op
  in
  Alcotest.(check (float 1e-9)) "same latency" (run ()) (run ())

let test_measure_throughput () =
  Alcotest.(check (float 1e-9)) "1M cycles -> 1 req/Mcycle" 1.0
    (Pibe.Measure.throughput ~kernel_cycles:500_000.0 ~user_cycles:500_000.0)

let test_env_caches_builds () =
  let env = Helpers.env () in
  let a = Pibe.Env.build env Pibe.Config.lto in
  let b = Pibe.Env.build env Pibe.Config.lto in
  Alcotest.(check bool) "physically cached" true (a == b);
  let l1 = Pibe.Env.latencies env Pibe.Config.lto in
  let l2 = Pibe.Env.latencies env Pibe.Config.lto in
  Alcotest.(check bool) "latency suite cached" true (l1 == l2)

let test_env_overheads_self_zero () =
  let env = Helpers.env () in
  let ovs = Pibe.Env.overheads env ~baseline:Pibe.Config.lto Pibe.Config.lto in
  List.iter (fun (_, v) -> Alcotest.(check (float 1e-9)) "zero" 0.0 v) ovs

let contains needle s =
  let n = String.length needle and h = String.length s in
  let rec go i = i + n <= h && (String.equal (String.sub s i n) needle || go (i + 1)) in
  go 0

let test_report_generates () =
  let env = Helpers.env () in
  let md = Pibe.Report.generate env in
  Alcotest.(check bool) "has title" true (contains "PIBE reproduction report" md);
  List.iter
    (fun section -> Alcotest.(check bool) (section ^ " present") true (contains section md))
    [ "Table 6"; "Table 5"; "Table 3"; "Table 7" ];
  (* each section carries a verdict; on the quick env all should hold *)
  Alcotest.(check bool) "no divergence" true (not (contains "DIVERGES" md));
  Alcotest.(check bool) "paper values embedded" true (contains "+149.1%" md)

let test_report_reference_data () =
  Alcotest.(check int) "table6 rows" 5 (List.length Pibe.Report.paper_table6);
  Alcotest.(check int) "table5 rows" 6 (List.length Pibe.Report.paper_table5_geomeans);
  let _, lto_all, pibe_all = List.nth Pibe.Report.paper_table6 4 in
  Alcotest.(check (float 0.01)) "paper all-defenses LTO" 149.1 lto_all;
  Alcotest.(check (float 0.01)) "paper all-defenses PIBE" 10.6 pibe_all

let test_perf_attribution () =
  let info = Helpers.kernel () in
  let op = Pibe_kernel.Workload.lmbench_op info "read" in
  let p =
    Pibe.Perf.profile Pibe_cpu.Engine.default_config info.Pibe_kernel.Gen.prog
      ~run:(fun engine ->
        let rng = Pibe_util.Rng.create 7 in
        for _ = 1 to 50 do
          op.Pibe_kernel.Workload.run engine rng
        done)
  in
  let rows = Pibe.Perf.rows p in
  Alcotest.(check bool) "many functions attributed" true (List.length rows > 10);
  (* self cycles sum to total (every cycle lands somewhere) *)
  let sum = List.fold_left (fun acc (r : Pibe.Perf.row) -> acc + r.Pibe.Perf.self_cycles) 0 rows in
  Alcotest.(check int) "self cycles account for the run" (Pibe.Perf.total_cycles p) sum;
  (* the hot read path dominates *)
  let vfs = List.find (fun (r : Pibe.Perf.row) -> r.Pibe.Perf.func = "vfs_read") rows in
  Alcotest.(check int) "vfs_read entered once per iteration" 50 vfs.Pibe.Perf.calls;
  Alcotest.(check bool) "inclusive >= self" true
    (vfs.Pibe.Perf.inclusive_cycles >= vfs.Pibe.Perf.self_cycles);
  Alcotest.(check int) "top is bounded" 3 (List.length (Pibe.Perf.top ~n:3 p))

let suite =
  [
    ("config names", `Quick, test_config_names);
    ("best config shapes", `Quick, test_best_config_shape);
    ("measurement deterministic", `Quick, test_measure_deterministic);
    ("throughput formula", `Quick, test_measure_throughput);
    ("environment caches builds", `Quick, test_env_caches_builds);
    ("overheads vs self are zero", `Quick, test_env_overheads_self_zero);
    ("report generates with verdicts", `Slow, test_report_generates);
    ("report reference data", `Quick, test_report_reference_data);
    ("perf flat profile attribution", `Quick, test_perf_attribution);
  ]
