(* The synthetic kernel: determinism, structure, dispatch-table wiring,
   workload execution, and the SPEC suite. *)

open Pibe_ir
module Gen = Pibe_kernel.Gen
module Ctx = Pibe_kernel.Ctx
module Memmap = Pibe_kernel.Memmap
module Workload = Pibe_kernel.Workload
module Spec = Pibe_kernel.Spec
module Engine = Pibe_cpu.Engine
module Rng = Pibe_util.Rng

let test_deterministic () =
  let a = Gen.generate { Ctx.seed = 7; scale = 1 } in
  let b = Gen.generate { Ctx.seed = 7; scale = 1 } in
  Alcotest.(check string) "identical images"
    (Printer.program_to_string a.Gen.prog)
    (Printer.program_to_string b.Gen.prog)

let test_seeds_differ () =
  let a = Gen.generate { Ctx.seed = 7; scale = 1 } in
  let b = Gen.generate { Ctx.seed = 8; scale = 1 } in
  Alcotest.(check bool) "different images" true
    (Printer.program_to_string a.Gen.prog <> Printer.program_to_string b.Gen.prog)

let test_scale_grows () =
  let a = Gen.generate { Ctx.seed = 7; scale = 1 } in
  let b = Gen.generate { Ctx.seed = 7; scale = 2 } in
  Alcotest.(check bool) "more functions at scale 2" true
    (Program.func_count b.Gen.prog > Program.func_count a.Gen.prog)

let test_validates () =
  let info = Helpers.kernel () in
  Alcotest.(check int) "no validation errors" 0
    (List.length (Validate.check_program info.Gen.prog))

let test_structure () =
  let info = Helpers.kernel () in
  let prog = info.Gen.prog in
  Alcotest.(check bool) "hundreds of functions" true (Program.func_count prog > 500);
  Alcotest.(check bool) "dozens of icall sites" true (Program.total_icall_sites prog > 30);
  Alcotest.(check bool) "rets ~ one per function" true
    (Program.total_ret_sites prog >= Program.func_count prog);
  (* every syscall is dispatchable *)
  List.iter
    (fun (name, _) -> ignore (Gen.nr info name))
    info.Gen.syscalls.Pibe_kernel.Syscalls.nrs

let test_fd_tables_wired () =
  let info = Helpers.kernel () in
  let mem = Program.initial_memory info.Gen.prog in
  let mm = info.Gen.mm in
  (* fd 0 is an ext4 file; fd 70 a pipe; fd 90 a tcp socket *)
  Alcotest.(check int) "fd 0 ext4" 0 mem.(mm.Memmap.fd_table + 0);
  Alcotest.(check int) "fd 70 pipefs" 6 mem.(mm.Memmap.fd_table + 70);
  Alcotest.(check int) "fd 90 sockfs" 7 mem.(mm.Memmap.fd_table + 90);
  Alcotest.(check int) "fd 90 tcp" 0 mem.(mm.Memmap.proto_table + 90);
  (* every ops cell holds a valid fptr index *)
  let nfptr = Array.length info.Gen.prog.Program.fptr_table in
  for fs = 0 to mm.Memmap.nfs - 1 do
    for op = 0 to mm.Memmap.ops_per_fs - 1 do
      let v = mem.(Memmap.vfs_op_addr mm ~fs ~op) in
      Alcotest.(check bool) "valid fptr" true (v >= 0 && v < nfptr)
    done
  done

let test_all_lmbench_ops_run () =
  let info = Helpers.kernel () in
  let engine = Engine.create info.Gen.prog in
  let rng = Rng.create 3 in
  List.iter
    (fun (op : Workload.op) ->
      for _ = 1 to 5 do
        op.Workload.run engine rng
      done)
    (Workload.lmbench info);
  Alcotest.(check bool) "executed instructions" true
    ((Engine.counters engine).Engine.insts > 1000)

let test_lmbench_has_20_ops () =
  let info = Helpers.kernel () in
  Alcotest.(check int) "paper's 20 latency tests" 20 (List.length (Workload.lmbench info));
  (* order matches paper Table 2 *)
  Alcotest.(check string) "first" "null"
    (List.hd (Workload.lmbench info)).Workload.op_name

let test_macro_mixes_run () =
  let info = Helpers.kernel () in
  let engine = Engine.create info.Gen.prog in
  let rng = Rng.create 5 in
  List.iter
    (fun (mix : Workload.mix) ->
      for _ = 1 to 40 do
        mix.Workload.request engine rng
      done;
      Alcotest.(check bool) (mix.Workload.mix_name ^ " user ratio positive") true
        (mix.Workload.user_ratio > 0.0))
    [ Workload.apache info; Workload.nginx info; Workload.dbench info ]

let test_boot_code_never_runs () =
  let info = Helpers.kernel () in
  let prog = info.Gen.prog in
  let profile =
    Pibe.Pipeline.profile prog ~run:(fun engine ->
        let rng = Rng.create 5 in
        List.iter
          (fun (op : Workload.op) ->
            for _ = 1 to 10 do
              op.Workload.run engine rng
            done)
          (Workload.lmbench info))
  in
  Program.iter_funcs prog (fun f ->
      if f.Types.attrs.Types.boot_only then
        Alcotest.(check int) (f.Types.fname ^ " not entered") 0
          (Pibe_profile.Profile.invocations profile f.Types.fname))

let test_gadget_registered_but_unreached () =
  let info = Helpers.kernel () in
  Alcotest.(check bool) "gadget in fptr table" true
    (Program.fptr_index info.Gen.prog info.Gen.gadget <> None);
  let engine = Engine.create info.Gen.prog in
  let rng = Rng.create 5 in
  let config = { Engine.default_config with Engine.record_trace = true } in
  let engine2 = Engine.create ~config info.Gen.prog in
  ignore engine;
  List.iter
    (fun (op : Workload.op) ->
      for _ = 1 to 3 do
        op.Workload.run engine2 rng
      done)
    (Workload.lmbench info);
  (* the secret value never appears in the observable trace *)
  Alcotest.(check bool) "secret never observed" true
    (not (List.mem 0xdeadbeef (Engine.trace engine2)))

let test_spec_suite_runs () =
  let spec = Spec.build () in
  let engine = Engine.create spec.Spec.prog in
  List.iter
    (fun (_, entry) ->
      ignore (Engine.call engine entry [ 10; 0 ]))
    spec.Spec.benchmarks;
  Alcotest.(check int) "ten benchmarks" 10 (List.length spec.Spec.benchmarks);
  (* micro entries execute the requested number of calls *)
  Engine.reset_cycles engine;
  let c0 = (Engine.counters engine).Engine.calls in
  ignore (Engine.call engine spec.Spec.micro_dcall [ 100; 0 ]);
  Alcotest.(check int) "100 dcalls" 100 ((Engine.counters engine).Engine.calls - c0)

let test_memmap_regions_disjoint () =
  let mm = Memmap.make ~nfs:8 ~nproto:4 ~n_drv:12 in
  let regions =
    [
      (mm.Memmap.fd_table, mm.Memmap.nfd);
      (mm.Memmap.proto_table, mm.Memmap.nfd);
      (mm.Memmap.vfs_ops, mm.Memmap.nfs * mm.Memmap.ops_per_fs);
      (mm.Memmap.sock_ops, mm.Memmap.nproto * mm.Memmap.ops_per_proto);
      (mm.Memmap.pv_ops, mm.Memmap.n_pv);
      (mm.Memmap.sched_ops, mm.Memmap.n_sched_class * mm.Memmap.ops_per_sched);
      (mm.Memmap.sig_handlers, mm.Memmap.n_sig);
      (mm.Memmap.drv_ops, mm.Memmap.n_drv * mm.Memmap.ops_per_drv);
      (mm.Memmap.timer_cbs, mm.Memmap.n_timer);
      (mm.Memmap.lsm_hooks, 4);
      (mm.Memmap.nf_hooks, 4);
      (mm.Memmap.tick, 1);
      (mm.Memmap.scratch, mm.Memmap.scratch_len);
      (mm.Memmap.secret, 1);
    ]
  in
  let sorted = List.sort compare regions in
  let rec check = function
    | (b1, l1) :: ((b2, _) :: _ as rest) ->
      Alcotest.(check bool) "disjoint" true (b1 + l1 <= b2);
      check rest
    | _ -> ()
  in
  check sorted;
  let last_base, last_len = List.nth sorted (List.length sorted - 1) in
  Alcotest.(check bool) "within size" true (last_base + last_len <= mm.Memmap.size)

let test_block_layer_on_fsync_path () =
  (* fsync must dispatch through the I/O-scheduler ops tables *)
  let info = Helpers.kernel () in
  let seen = ref [] in
  let config =
    {
      Engine.default_config with
      Engine.on_edge = (Some (fun e -> seen := e.Engine.callee :: !seen));
    }
  in
  let engine = Engine.create ~config info.Gen.prog in
  ignore (Engine.call engine info.Gen.entry [ Gen.nr info "fsync"; 0; 1 ]);
  let hit name = List.exists (fun c -> String.equal c name) !seen in
  Alcotest.(check bool) "submit_bio ran" true (hit "submit_bio");
  Alcotest.(check bool) "blk_flush ran" true (hit "blk_flush");
  Alcotest.(check bool) "a scheduler op ran" true
    (List.exists
       (fun c ->
         List.exists
           (fun p -> String.length c > String.length p && String.sub c 0 (String.length p) = p)
           [ "noop_"; "deadline_"; "cfq_" ])
       !seen)

let test_crypto_on_exec_path () =
  let info = Helpers.kernel () in
  let seen = ref [] in
  let config =
    {
      Engine.default_config with
      Engine.on_edge = (Some (fun e -> seen := e.Engine.callee :: !seen));
    }
  in
  let engine = Engine.create ~config info.Gen.prog in
  ignore (Engine.call engine info.Gen.entry [ Gen.nr info "exec"; 12345; 1 ]);
  Alcotest.(check bool) "signature hash ran" true
    (List.exists (fun c -> String.equal c "crypto_hash") !seen)

let test_gen_util_loop () =
  (* loop executes count iterations and leaves the builder at the exit *)
  let mm = Memmap.make ~nfs:1 ~nproto:1 ~n_drv:1 in
  let ctx = Pibe_kernel.Ctx.create { Ctx.seed = 1; scale = 1 } mm in
  let b = Pibe_ir.Builder.create ~name:"looper" ~params:1 in
  let n = Pibe_ir.Builder.param b 0 in
  ignore
    (Pibe_kernel.Gen_util.loop ctx b ~count:(Pibe_ir.Types.Reg n) ~body:(fun b _ ->
         Pibe_ir.Builder.observe b (Pibe_ir.Types.Imm 1);
         None));
  Pibe_ir.Builder.ret b None;
  let prog =
    Program.add_func
      (Program.with_globals_size Program.empty mm.Memmap.size)
      (Pibe_ir.Builder.finish b ())
  in
  let config = { Engine.default_config with Engine.record_trace = true } in
  let engine = Engine.create ~config prog in
  ignore (Engine.call engine "looper" [ 7 ]);
  Alcotest.(check int) "7 iterations" 7 (List.length (Engine.trace engine))

let test_gen_util_chain_depth () =
  let mm = Memmap.make ~nfs:1 ~nproto:1 ~n_drv:1 in
  let ctx = Pibe_kernel.Ctx.create { Ctx.seed = 2; scale = 1 } mm in
  let top = Pibe_kernel.Gen_util.chain ctx ~name:"c" ~depth:3 ~compute:4 ~subsystem:"t" () in
  Alcotest.(check string) "top named after the chain" "c" top;
  let prog = ctx.Pibe_kernel.Ctx.prog in
  (* depth 3 = top + two intermediate levels + leaf *)
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " exists") true (Program.mem prog name))
    [ "c"; "c__2"; "c__1"; "c__0" ];
  (* executing the top reaches the leaf *)
  let engine = Engine.create prog in
  ignore (Engine.call engine "c" [ 1; 2 ]);
  Alcotest.(check bool) "4 activations" true ((Engine.counters engine).Engine.calls >= 3)

let suite =
  [
    ("generation deterministic", `Quick, test_deterministic);
    ("different seeds differ", `Quick, test_seeds_differ);
    ("scale grows the image", `Quick, test_scale_grows);
    ("image validates", `Quick, test_validates);
    ("structure sanity", `Quick, test_structure);
    ("fd/ops tables wired", `Quick, test_fd_tables_wired);
    ("all lmbench ops run", `Quick, test_all_lmbench_ops_run);
    ("lmbench has the paper's 20 tests", `Quick, test_lmbench_has_20_ops);
    ("macro mixes run", `Quick, test_macro_mixes_run);
    ("boot code never runs under workloads", `Quick, test_boot_code_never_runs);
    ("gadget registered but unreached", `Quick, test_gadget_registered_but_unreached);
    ("spec suite runs", `Quick, test_spec_suite_runs);
    ("memmap regions disjoint", `Quick, test_memmap_regions_disjoint);
    ("block layer on fsync path", `Quick, test_block_layer_on_fsync_path);
    ("crypto on exec path", `Quick, test_crypto_on_exec_path);
    ("gen_util loop semantics", `Quick, test_gen_util_loop);
    ("gen_util chain structure", `Quick, test_gen_util_chain_depth);
  ]
