(* Hardening pass: protection kinds per defense set, jump-table lowering,
   audit accounting, image sizes, listings. *)

open Pibe_ir
open Types
module Pass = Pibe_harden.Pass
module Audit = Pibe_harden.Audit
module Thunks = Pibe_harden.Thunks

let kernel_prog () = (Helpers.kernel ()).Pibe_kernel.Gen.prog

let test_forward_kinds () =
  Alcotest.(check bool) "none" true (Pass.forward_kind Pass.no_defenses = Protection.F_none);
  Alcotest.(check bool) "retp" true
    (Pass.forward_kind { Pass.retpolines = true; ret_retpolines = false; lvi = false }
    = Protection.F_retpoline);
  Alcotest.(check bool) "lvi" true
    (Pass.forward_kind { Pass.retpolines = false; ret_retpolines = false; lvi = true }
    = Protection.F_lvi);
  Alcotest.(check bool) "combined = fenced" true
    (Pass.forward_kind Pass.all_defenses = Protection.F_fenced_retpoline)

let test_backward_kinds () =
  Alcotest.(check bool) "retret" true
    (Pass.backward_kind { Pass.retpolines = false; ret_retpolines = true; lvi = false }
    = Protection.B_ret_retpoline);
  Alcotest.(check bool) "combined" true
    (Pass.backward_kind Pass.all_defenses = Protection.B_fenced_ret_retpoline);
  Alcotest.(check bool) "retp only leaves returns bare" true
    (Pass.backward_kind { Pass.retpolines = true; ret_retpolines = false; lvi = false }
    = Protection.B_none)

let test_all_icalls_protected () =
  let prog = kernel_prog () in
  let image = Pass.harden prog Pass.all_defenses in
  Program.iter_funcs image.Pass.prog (fun f ->
      if not f.attrs.is_asm then
        List.iter
          (fun (s : site) ->
            Alcotest.(check bool)
              (Printf.sprintf "site %d protected" s.site_id)
              true
              (Pass.fwd_protection image s = Protection.F_fenced_retpoline))
          (Func.icall_sites f))

let test_jump_tables_lowered_except_asm () =
  let prog = kernel_prog () in
  let image = Pass.harden prog Pass.all_defenses in
  Program.iter_funcs image.Pass.prog (fun f ->
      let jts = Func.jump_table_count f in
      if f.attrs.is_asm then ()
      else Alcotest.(check int) (f.fname ^ " has no jump tables") 0 jts)

let test_no_defenses_keeps_jump_tables () =
  let prog = kernel_prog () in
  let image = Pass.harden prog Pass.no_defenses in
  let total =
    Program.fold_funcs image.Pass.prog ~init:0 ~f:(fun acc f -> acc + Func.jump_table_count f)
  in
  Alcotest.(check bool) "jump tables survive" true (total > 10)

let test_boot_only_exempt_backward () =
  let prog = kernel_prog () in
  let image = Pass.harden prog Pass.all_defenses in
  Program.iter_funcs image.Pass.prog (fun f ->
      if f.attrs.boot_only then
        Alcotest.(check bool) (f.fname ^ " boot-exempt") true
          (Pass.bwd_protection image f.fname = Protection.B_none))

let test_audit_counts_sum () =
  let prog = kernel_prog () in
  let image = Pass.harden prog Pass.all_defenses in
  let r = Audit.run image in
  let asm_sites =
    Program.fold_funcs prog ~init:0 ~f:(fun acc f ->
        acc + List.length (Func.asm_icall_sites f))
  in
  Alcotest.(check int) "defended + vulnerable = icalls + asm sites"
    (Program.total_icall_sites prog + asm_sites)
    (r.Audit.defended_icalls + r.Audit.vulnerable_icalls);
  Alcotest.(check int) "return partition"
    (Program.total_ret_sites prog)
    (r.Audit.defended_rets + r.Audit.vulnerable_rets);
  Alcotest.(check bool) "fully protected modulo asm/boot" true
    (Audit.fully_protected r ~against:Pass.all_defenses);
  Alcotest.(check bool) "asm residue exists (para-virt)" true (r.Audit.asm_icalls > 0);
  Alcotest.(check bool) "a few asm jump tables remain" true (r.Audit.vulnerable_ijumps > 0)

let test_audit_no_defense_image () =
  let prog = kernel_prog () in
  let image = Pass.harden prog Pass.no_defenses in
  let r = Audit.run image in
  Alcotest.(check int) "nothing defended" 0 (r.Audit.defended_icalls + r.Audit.defended_rets)

let test_image_bytes_grow_with_defenses () =
  let prog = kernel_prog () in
  let base = Pass.image_bytes (Pass.harden prog Pass.no_defenses) in
  let retp =
    Pass.image_bytes
      (Pass.harden prog { Pass.retpolines = true; ret_retpolines = false; lvi = false })
  in
  let all = Pass.image_bytes (Pass.harden prog Pass.all_defenses) in
  Alcotest.(check bool) "retpolines add bytes" true (retp > base);
  Alcotest.(check bool) "all defenses add more" true (all > retp)

let test_footprint_includes_ret_bytes () =
  let prog = kernel_prog () in
  let image = Pass.harden prog Pass.all_defenses in
  let f = Program.find prog "vfs_read" in
  Alcotest.(check bool) "footprint > layout size" true
    (Pass.footprint image f > Layout.func_size f)

let test_listings_contain_key_instructions () =
  let has needle s =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.equal (String.sub s i n) needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "retpoline pauses" true (has "pause" (Thunks.listing `Retpoline));
  Alcotest.(check bool) "lvi fences" true (has "lfence" (Thunks.listing `Lvi_forward));
  Alcotest.(check bool) "backward fences" true (has "lfence" (Thunks.listing `Lvi_backward));
  Alcotest.(check bool) "fenced retpoline nots" true
    (has "notq" (Thunks.listing `Fenced_retpoline))

let test_defenses_name () =
  Alcotest.(check string) "all" "all-defenses" (Pass.defenses_name Pass.all_defenses);
  Alcotest.(check string) "none" "none" (Pass.defenses_name Pass.no_defenses)

let suite =
  [
    ("forward kinds", `Quick, test_forward_kinds);
    ("backward kinds", `Quick, test_backward_kinds);
    ("all icalls protected", `Quick, test_all_icalls_protected);
    ("jump tables lowered except asm", `Quick, test_jump_tables_lowered_except_asm);
    ("no defenses keeps jump tables", `Quick, test_no_defenses_keeps_jump_tables);
    ("boot-only exempt from backward hardening", `Quick, test_boot_only_exempt_backward);
    ("audit counts partition the surface", `Quick, test_audit_counts_sum);
    ("audit of undefended image", `Quick, test_audit_no_defense_image);
    ("image bytes grow with defenses", `Quick, test_image_bytes_grow_with_defenses);
    ("footprint includes hardening bytes", `Quick, test_footprint_includes_ret_bytes);
    ("listings contain key instructions", `Quick, test_listings_contain_key_instructions);
    ("defense names", `Quick, test_defenses_name);
  ]
