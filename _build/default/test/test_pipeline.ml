(* End-to-end pipeline: semantic preservation of the full optimization
   stack on the kernel, and the paper's headline performance orderings. *)

module Engine = Pibe_cpu.Engine
module Pass = Pibe_harden.Pass
module Gen = Pibe_kernel.Gen
module Workload = Pibe_kernel.Workload

let fixed_workload info engine =
  let rng = Pibe_util.Rng.create 99 in
  List.iter
    (fun (op : Workload.op) ->
      for _ = 1 to 8 do
        op.Workload.run engine rng
      done)
    (Workload.lmbench info)

let observe info prog =
  let config = { Engine.default_config with Engine.record_trace = true } in
  let engine = Engine.create ~config prog in
  fixed_workload info engine;
  (Engine.trace engine, Array.to_list (Engine.memory engine))

let test_full_optimization_preserves_kernel_semantics () =
  let env = Helpers.env () in
  let info = Pibe.Env.info env in
  let cases =
    [
      Pibe.Config.pibe_baseline;
      Pibe.Exp_common.full_opt ~icp:99.0 ~inline:99.0 Pass.no_defenses;
      {
        Pibe.Config.defenses = Pass.no_defenses;
        opt = Pibe.Config.Llvm_pgo { icp_budget = 99.9; inline_budget = 99.9 };
      };
    ]
  in
  let reference = observe info info.Gen.prog in
  List.iter
    (fun config ->
      let built = Pibe.Env.build env config in
      let got = observe info built.Pibe.Pipeline.image.Pass.prog in
      Alcotest.(check bool)
        (Pibe.Config.name config ^ " preserves behaviour")
        true (got = reference))
    cases

let test_hardening_preserves_semantics () =
  let env = Helpers.env () in
  let info = Pibe.Env.info env in
  let built = Pibe.Env.build env (Pibe.Exp_common.lto_with Pass.all_defenses) in
  Alcotest.(check bool) "defenses change timing, not meaning" true
    (observe info built.Pibe.Pipeline.image.Pass.prog = observe info info.Gen.prog)

let geomean env config = Pibe.Env.geomean_overhead env ~baseline:Pibe.Config.lto config

let test_headline_orderings () =
  let env = Helpers.env () in
  let all = Pass.all_defenses in
  let unopt = geomean env (Pibe.Exp_common.lto_with all) in
  let icp = geomean env (Pibe.Exp_common.icp_only ~budget:99.999 all) in
  let full = geomean env (Pibe.Exp_common.best_config all) in
  let pgo = geomean env Pibe.Config.pibe_baseline in
  (* The paper's order-of-magnitude claim. *)
  Alcotest.(check bool) "unoptimized defenses are very expensive" true (unopt > 80.0);
  Alcotest.(check bool) "icp alone helps" true (icp < unopt);
  Alcotest.(check bool) "full optimization helps much more" true (full < icp /. 2.0);
  Alcotest.(check bool) "an order of magnitude" true (full < unopt /. 5.0);
  Alcotest.(check bool) "PGO baseline is a speedup" true (pgo < 0.0)

let test_per_defense_orderings () =
  let env = Helpers.env () in
  let retp = geomean env (Pibe.Exp_common.lto_with Pibe.Exp_common.retpolines_only) in
  let retret = geomean env (Pibe.Exp_common.lto_with Pibe.Exp_common.ret_retpolines_only) in
  let lvi = geomean env (Pibe.Exp_common.lto_with Pibe.Exp_common.lvi_only) in
  let all = geomean env (Pibe.Exp_common.lto_with Pass.all_defenses) in
  (* Returns dominate kernel branch counts, so backward-edge defenses cost
     more than retpolines (paper Table 6). *)
  Alcotest.(check bool) "ret-retpolines > retpolines" true (retret > retp);
  Alcotest.(check bool) "lvi > retpolines" true (lvi > retp);
  Alcotest.(check bool) "combination > each part" true (all > retret && all > lvi)

let test_budget_sweep_monotone_enough () =
  let env = Helpers.env () in
  let all = Pass.all_defenses in
  let g b = geomean env (Pibe.Exp_common.full_opt ~icp:99.999 ~inline:b all) in
  let low = g 99.0 and high = g 99.9999 in
  Alcotest.(check bool) "higher budget never much worse" true (high <= low +. 2.0)

let test_optimize_does_not_mutate_input_profile () =
  let env = Helpers.env () in
  let info = Pibe.Env.info env in
  let profile = Pibe.Env.lmbench_profile env in
  let before = Pibe_profile.Profile.to_string profile in
  let _ =
    Pibe.Pipeline.build info.Gen.prog profile (Pibe.Exp_common.best_config Pass.all_defenses)
  in
  Alcotest.(check string) "input profile untouched" before
    (Pibe_profile.Profile.to_string profile)

let test_built_images_validate () =
  let env = Helpers.env () in
  List.iter
    (fun config ->
      let built = Pibe.Env.build env config in
      Pibe_ir.Validate.check_exn built.Pibe.Pipeline.image.Pass.prog)
    [
      Pibe.Config.lto;
      Pibe.Config.pibe_baseline;
      Pibe.Exp_common.best_config Pass.all_defenses;
      Pibe.Exp_common.icp_only ~budget:99.0 Pibe.Exp_common.retpolines_only;
    ]

let suite =
  [
    ( "full optimization preserves kernel semantics",
      `Slow,
      test_full_optimization_preserves_kernel_semantics );
    ("hardening preserves semantics", `Quick, test_hardening_preserves_semantics);
    ("headline overhead orderings", `Slow, test_headline_orderings);
    ("per-defense orderings", `Slow, test_per_defense_orderings);
    ("budget sweep monotone", `Slow, test_budget_sweep_monotone_enough);
    ("input profile not mutated", `Quick, test_optimize_does_not_mutate_input_profile);
    ("built images validate", `Quick, test_built_images_validate);
  ]
