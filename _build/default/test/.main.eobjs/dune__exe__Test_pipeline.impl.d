test/test_pipeline.ml: Alcotest Array Helpers List Pibe Pibe_cpu Pibe_harden Pibe_ir Pibe_kernel Pibe_profile Pibe_util
