test/test_profile.ml: Alcotest Helpers List Pibe_cpu Pibe_ir Pibe_kernel Pibe_profile Pibe_util Printf QCheck String Types
