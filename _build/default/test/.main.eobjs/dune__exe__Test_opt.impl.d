test/test_opt.ml: Alcotest Array Builder Float Func Helpers List Pibe Pibe_cpu Pibe_ir Pibe_kernel Pibe_opt Pibe_profile Printer Program QCheck Types Validate
