test/main.mli:
