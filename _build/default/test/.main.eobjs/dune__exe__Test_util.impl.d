test/test_util.ml: Alcotest Array Float Helpers List Pibe_util QCheck String
