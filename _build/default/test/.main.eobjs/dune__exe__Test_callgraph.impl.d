test/test_callgraph.ml: Alcotest Builder Helpers List Pibe_cg Pibe_ir Program QCheck String Types
