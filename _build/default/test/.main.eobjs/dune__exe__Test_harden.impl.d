test/test_harden.ml: Alcotest Func Helpers Layout List Pibe_harden Pibe_ir Pibe_kernel Printf Program Protection String Types
