test/test_core.ml: Alcotest Helpers List Pibe Pibe_cpu Pibe_harden Pibe_kernel Pibe_util String
