test/test_kernel.ml: Alcotest Array Helpers List Pibe Pibe_cpu Pibe_ir Pibe_kernel Pibe_profile Pibe_util Printer Program String Types Validate
