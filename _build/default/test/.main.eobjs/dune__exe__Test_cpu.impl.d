test/test_cpu.ml: Alcotest Array Builder Helpers List Pibe_cpu Pibe_ir Printf Program Protection Types
