test/test_attack.ml: Alcotest Helpers Pibe_cpu Pibe_harden Pibe_ir Pibe_jumpswitch Pibe_kernel Printf
