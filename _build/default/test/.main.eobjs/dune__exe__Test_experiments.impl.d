test/test_experiments.ml: Alcotest Helpers List Pibe Pibe_util Printf String
