test/test_v1_scan.ml: Alcotest Builder Helpers List Pibe_harden Pibe_ir Pibe_kernel Program Types
