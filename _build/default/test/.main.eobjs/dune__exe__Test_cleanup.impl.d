test/test_cleanup.ml: Alcotest Array Builder Func Helpers List Pibe_cpu Pibe_ir Pibe_kernel Pibe_opt Pibe_util Printer Program QCheck Types Validate
