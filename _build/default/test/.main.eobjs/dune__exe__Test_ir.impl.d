test/test_ir.ml: Alcotest Array Builder Func Helpers Layout List Parser Pibe_ir Printer Program QCheck Types Validate
