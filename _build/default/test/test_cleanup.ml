(* The scalar cleanup pass: targeted folding behaviours plus differential
   semantic preservation on random programs and the kernel. *)

open Pibe_ir
open Types
module Cleanup = Pibe_opt.Cleanup

let build body =
  let b = Builder.create ~name:"f" ~params:2 in
  body b;
  Builder.finish b ()

let count_insts f =
  Array.fold_left (fun acc blk -> acc + Array.length blk.insts) 0 f.blocks

let test_constant_folding () =
  let f =
    build (fun b ->
        let r1 = Builder.reg b in
        Builder.assign b r1 (Const 6);
        let r2 = Builder.reg b in
        Builder.assign b r2 (Binop (Mul, Reg r1, Imm 7));
        Builder.observe b (Reg r2);
        Builder.ret b (Some (Reg r2)))
  in
  let f' = Cleanup.run_func f in
  (* the multiply folds to a constant observation *)
  let has_binop = ref false in
  Func.iter_insts f' (fun _ i ->
      match i with Assign (_, Binop _) -> has_binop := true | _ -> ());
  Alcotest.(check bool) "no binop left" false !has_binop

let test_branch_folding_removes_dead_arm () =
  let f =
    build (fun b ->
        let c = Builder.reg b in
        Builder.assign b c (Const 1);
        let l1 = Builder.new_block b and l2 = Builder.new_block b in
        Builder.br b (Reg c) l1 l2;
        Builder.switch_to b l1;
        Builder.ret b (Some (Imm 10));
        Builder.switch_to b l2;
        Builder.observe b (Imm 666);
        Builder.ret b (Some (Imm 20)))
  in
  let f', stats = Cleanup.run_func_with_stats f in
  Alcotest.(check bool) "branch folded" true (stats.Cleanup.branches_folded >= 1);
  Alcotest.(check bool) "dead arm removed" true (stats.Cleanup.blocks_removed >= 1);
  Alcotest.(check int) "two blocks remain at most" 2 (Array.length f'.blocks)

let test_dead_assign_removed () =
  let f =
    build (fun b ->
        let dead = Builder.reg b in
        Builder.assign b dead (Binop (Add, Reg 0, Reg 1));
        Builder.ret b (Some (Reg 0)))
  in
  let f', stats = Cleanup.run_func_with_stats f in
  Alcotest.(check int) "one dead assign" 1 stats.Cleanup.dead_assigns_removed;
  Alcotest.(check int) "body empty" 0 (count_insts f')

let test_side_effects_kept () =
  let prog = Program.with_globals_size Program.empty 8 in
  let prog, site = Program.fresh_site prog in
  let leaf =
    let b = Builder.create ~name:"g" ~params:0 in
    Builder.ret b (Some (Imm 1));
    Builder.finish b ()
  in
  let prog = Program.add_func prog leaf in
  let f =
    build (fun b ->
        (* an ignored call result, a store and an observe must all stay *)
        let r = Builder.reg b in
        Builder.call b ~dst:r site "g" [];
        Builder.store b ~addr:(Imm 3) ~value:(Imm 9);
        Builder.observe b (Imm 5);
        Builder.ret b None)
  in
  let prog = Program.add_func prog f in
  let prog' = Cleanup.run prog in
  let f' = Program.find prog' "f" in
  Alcotest.(check int) "all three kept" 3 (count_insts f')

let test_jump_threading () =
  let f =
    build (fun b ->
        let hop = Builder.new_block b and final = Builder.new_block b in
        Builder.jmp b hop;
        Builder.switch_to b hop;
        Builder.jmp b final;
        Builder.switch_to b final;
        Builder.ret b None)
  in
  let f' = Cleanup.run_func f in
  Alcotest.(check bool) "forwarding blocks removed" true (Array.length f'.blocks <= 2)

let test_switch_on_constant () =
  let f =
    build (fun b ->
        let s = Builder.reg b in
        Builder.assign b s (Const 1);
        let c0 = Builder.new_block b and c1 = Builder.new_block b in
        let d = Builder.new_block b in
        Builder.switch b (Reg s) [ (0, c0); (1, c1) ] ~default:d;
        Builder.switch_to b c0;
        Builder.ret b (Some (Imm 0));
        Builder.switch_to b c1;
        Builder.ret b (Some (Imm 111));
        Builder.switch_to b d;
        Builder.ret b (Some (Imm 2)))
  in
  let f', stats = Cleanup.run_func_with_stats f in
  Alcotest.(check bool) "switch folded" true (stats.Cleanup.branches_folded >= 1);
  Alcotest.(check bool) "dead cases dropped" true (Array.length f'.blocks <= 2)

let test_optnone_untouched () =
  let prog = Program.with_globals_size Program.empty 8 in
  let f =
    let b = Builder.create ~name:"f" ~params:0 in
    let dead = Builder.reg b in
    Builder.assign b dead (Const 1);
    Builder.ret b None;
    Builder.finish b ~attrs:{ default_attrs with optnone = true } ()
  in
  let prog = Program.add_func prog f in
  let prog' = Cleanup.run prog in
  Alcotest.(check int) "dead assign survives under optnone" 1
    (count_insts (Program.find prog' "f"))

let prop_cleanup_preserves_semantics =
  QCheck.Test.make ~name:"cleanup preserves observable behaviour" ~count:200
    QCheck.small_int (fun seed ->
      let prog = Helpers.random_program seed in
      let prog' = Cleanup.run prog in
      Validate.check_program prog' = [] && Helpers.equivalent prog prog')

let prop_cleanup_idempotent =
  QCheck.Test.make ~name:"cleanup is idempotent" ~count:80 QCheck.small_int (fun seed ->
      let prog = Cleanup.run (Helpers.random_program seed) in
      Printer.program_to_string (Cleanup.run prog) = Printer.program_to_string prog)

let prop_cleanup_never_grows =
  QCheck.Test.make ~name:"cleanup never grows code" ~count:100 QCheck.small_int
    (fun seed ->
      let prog = Helpers.random_program seed in
      let prog' = Cleanup.run prog in
      Program.fold_funcs prog' ~init:true ~f:(fun acc f ->
          acc && Func.inst_count f <= Func.inst_count (Program.find prog f.fname)))

let test_cleanup_preserves_kernel_semantics () =
  let info = Helpers.kernel () in
  let prog = info.Pibe_kernel.Gen.prog in
  let prog' = Cleanup.run prog in
  Validate.check_exn prog';
  let run p =
    let config =
      { Pibe_cpu.Engine.default_config with Pibe_cpu.Engine.record_trace = true }
    in
    let engine = Pibe_cpu.Engine.create ~config p in
    let rng = Pibe_util.Rng.create 4 in
    List.iter
      (fun (op : Pibe_kernel.Workload.op) ->
        for _ = 1 to 5 do
          op.Pibe_kernel.Workload.run engine rng
        done)
      (Pibe_kernel.Workload.lmbench info);
    (Pibe_cpu.Engine.trace engine, Array.to_list (Pibe_cpu.Engine.memory engine))
  in
  Alcotest.(check bool) "kernel behaviour preserved" true (run prog = run prog')

let suite =
  [
    ("constant folding", `Quick, test_constant_folding);
    ("branch folding removes dead arm", `Quick, test_branch_folding_removes_dead_arm);
    ("dead assign removed", `Quick, test_dead_assign_removed);
    ("side effects kept", `Quick, test_side_effects_kept);
    ("jump threading", `Quick, test_jump_threading);
    ("switch on constant", `Quick, test_switch_on_constant);
    ("optnone untouched", `Quick, test_optnone_untouched);
    Helpers.qcheck_to_alcotest prop_cleanup_preserves_semantics;
    Helpers.qcheck_to_alcotest prop_cleanup_idempotent;
    Helpers.qcheck_to_alcotest prop_cleanup_never_grows;
    ("cleanup preserves kernel semantics", `Quick, test_cleanup_preserves_kernel_semantics);
  ]
