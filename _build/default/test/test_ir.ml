(* IR core: builder, accessors, validator, printer/parser round trips,
   layout. *)

open Pibe_ir
open Types

let small_func () =
  let b = Builder.create ~name:"f" ~params:2 in
  let a0 = Builder.param b 0 and a1 = Builder.param b 1 in
  let r = Builder.reg b in
  Builder.assign b r (Binop (Add, Reg a0, Reg a1));
  Builder.observe b (Reg r);
  let exit_l = Builder.new_block b in
  Builder.jmp b exit_l;
  Builder.switch_to b exit_l;
  Builder.ret b (Some (Reg r));
  Builder.finish b ()

(* ----------------------------- builder ----------------------------- *)

let test_builder_basic () =
  let f = small_func () in
  Alcotest.(check int) "two blocks" 2 (Array.length f.blocks);
  Alcotest.(check int) "entry" 0 f.entry;
  Alcotest.(check int) "params" 2 f.params;
  Alcotest.(check bool) "regs allocated" true (f.nregs >= 3)

let test_builder_unsealed_fails () =
  let b = Builder.create ~name:"g" ~params:0 in
  let _l = Builder.new_block b in
  Builder.ret b None;
  Alcotest.check_raises "unsealed block"
    (Invalid_argument "Builder.finish: block 1 of g has no terminator") (fun () ->
      ignore (Builder.finish b ()))

let test_builder_double_seal_fails () =
  let b = Builder.create ~name:"g" ~params:0 in
  Builder.ret b None;
  (try
     Builder.ret b None;
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ())

let test_builder_param_bounds () =
  let b = Builder.create ~name:"g" ~params:1 in
  (try
     ignore (Builder.param b 1);
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ())

(* ------------------------------ func ------------------------------- *)

let test_func_accessors () =
  let prog = Helpers.random_program 1 in
  Program.iter_funcs prog (fun f ->
      let calls = Func.call_sites f in
      let icalls = Func.icall_sites f in
      let count = ref 0 in
      Func.iter_insts f (fun _ i ->
          match i with
          | Call _ | Icall _ -> incr count
          | Assign _ | Store _ | Observe _ | Asm_icall _ -> ());
      Alcotest.(check int) "site accessors agree with traversal"
        (List.length calls + List.length icalls)
        !count)

let test_reachable_labels () =
  let f = small_func () in
  let r = Func.reachable_labels f in
  Alcotest.(check bool) "all reachable" true (Array.for_all (fun x -> x) r)

let test_ret_count () =
  let f = small_func () in
  Alcotest.(check int) "one ret" 1 (Func.ret_count f)

let test_rename_sites () =
  let prog = Helpers.random_program 2 in
  Program.iter_funcs prog (fun f ->
      let f' = Func.rename_sites f ~fresh:(fun s -> { s with site_id = s.site_id + 1000 }) in
      let olds = List.map (fun (s, _) -> s.site_id) (Func.call_sites f) in
      let news = List.map (fun (s, _) -> s.site_id) (Func.call_sites f') in
      Alcotest.(check (list int)) "shifted" (List.map (fun i -> i + 1000) olds) news)

(* ---------------------------- validator ---------------------------- *)

let test_validate_good () =
  let prog = Helpers.random_program 3 in
  Alcotest.(check int) "no errors" 0 (List.length (Validate.check_program prog))

let test_validate_bad_reg () =
  let f = small_func () in
  let bad =
    { f with blocks = [| { insts = [| Assign (99, Const 1) |]; term = Ret None } |] }
  in
  Alcotest.(check bool) "caught" true (Validate.check_func bad <> [])

let test_validate_bad_label () =
  let f = small_func () in
  let bad = { f with blocks = [| { insts = [||]; term = Jmp 42 } |] } in
  Alcotest.(check bool) "caught" true (Validate.check_func bad <> [])

let test_validate_unknown_callee () =
  let prog = Program.with_globals_size Program.empty 8 in
  let prog, site = Program.fresh_site prog in
  let b = Builder.create ~name:"f" ~params:0 in
  Builder.call b site "missing" [];
  Builder.ret b None;
  let prog = Program.add_func prog (Builder.finish b ()) in
  Alcotest.(check bool) "caught" true (Validate.check_program prog <> [])

let test_validate_duplicate_site () =
  let prog = Program.with_globals_size Program.empty 8 in
  let prog, site = Program.fresh_site prog in
  let mk name =
    let b = Builder.create ~name ~params:0 in
    Builder.call b site "g" [];
    Builder.ret b None;
    Builder.finish b ()
  in
  let leaf =
    let b = Builder.create ~name:"g" ~params:0 in
    Builder.ret b None;
    Builder.finish b ()
  in
  let prog = Program.add_func prog leaf in
  let prog = Program.add_func prog (mk "f1") in
  let prog = Program.add_func prog (mk "f2") in
  Alcotest.(check bool) "duplicate site caught" true (Validate.check_program prog <> [])

(* ---------------------------- round trip --------------------------- *)

let prop_func_roundtrip =
  QCheck.Test.make ~name:"printer/parser round-trips functions" ~count:150
    QCheck.small_int (fun seed ->
      let prog = Helpers.random_program seed in
      Program.fold_funcs prog ~init:true ~f:(fun acc f ->
          acc && Parser.parse_func (Printer.func_to_string f) = f))

let prop_program_roundtrip =
  QCheck.Test.make ~name:"printer/parser round-trips whole programs" ~count:60
    QCheck.small_int (fun seed ->
      let prog = Helpers.random_program seed in
      let prog' = Parser.parse_program (Printer.program_to_string prog) in
      Printer.program_to_string prog' = Printer.program_to_string prog
      && Program.initial_memory prog' = Program.initial_memory prog
      && prog'.Program.next_site >= prog.Program.next_site)

let test_parse_error_reports_line () =
  try
    ignore (Parser.parse_func "func @f(params=0, regs=0) {\nbb0:\n  garbage here\n  ret\n}");
    Alcotest.fail "expected parse error"
  with Parser.Parse_error { line; _ } -> Alcotest.(check int) "line" 3 line

(* ------------------------------ layout ----------------------------- *)

let test_layout_sites_resolve () =
  let prog = Helpers.random_program 4 in
  let layout = Layout.build prog in
  List.iter
    (fun (fname, (site : site)) ->
      let addr = Layout.site_addr layout site.site_id in
      Alcotest.(check (option string)) "address maps back to function" (Some fname)
        (Layout.func_at layout addr);
      Alcotest.(check (option int)) "address maps back to site" (Some site.site_id)
        (Layout.site_at layout addr))
    (Program.all_sites prog)

let test_layout_disjoint_spans () =
  let prog = Helpers.random_program 5 in
  let layout = Layout.build prog in
  let spans =
    List.map
      (fun name -> (Layout.func_addr layout name, Layout.func_size_of layout name))
      (Program.layout_order prog)
  in
  let rec check = function
    | (a1, s1) :: ((a2, _) :: _ as rest) ->
      Alcotest.(check bool) "ordered and disjoint" true (a1 + s1 <= a2);
      check rest
    | _ -> ()
  in
  check spans

let test_layout_total () =
  let prog = Helpers.random_program 6 in
  let layout = Layout.build prog in
  let sum =
    Program.fold_funcs prog ~init:0 ~f:(fun acc f -> acc + Layout.func_size f)
  in
  Alcotest.(check int) "total = sum of sizes" sum (Layout.total_code_bytes layout)

let test_jump_table_bigger_than_ladder_for_big_switches () =
  let cases = Array.init 10 (fun i -> (i, 0)) in
  let jt = Layout.term_size (Switch { scrutinee = Imm 0; cases; default = 0; lowering = Jump_table }) in
  let ladder =
    Layout.term_size (Switch { scrutinee = Imm 0; cases; default = 0; lowering = Branch_ladder })
  in
  Alcotest.(check bool) "ladder smaller in bytes? no: table data dominates" true (jt <> ladder)

let suite =
  [
    ("builder basic", `Quick, test_builder_basic);
    ("builder unsealed block fails", `Quick, test_builder_unsealed_fails);
    ("builder double seal fails", `Quick, test_builder_double_seal_fails);
    ("builder param bounds", `Quick, test_builder_param_bounds);
    ("func accessors agree", `Quick, test_func_accessors);
    ("func reachable labels", `Quick, test_reachable_labels);
    ("func ret count", `Quick, test_ret_count);
    ("func rename sites", `Quick, test_rename_sites);
    ("validate accepts generated programs", `Quick, test_validate_good);
    ("validate catches bad register", `Quick, test_validate_bad_reg);
    ("validate catches bad label", `Quick, test_validate_bad_label);
    ("validate catches unknown callee", `Quick, test_validate_unknown_callee);
    ("validate catches duplicate sites", `Quick, test_validate_duplicate_site);
    Helpers.qcheck_to_alcotest prop_func_roundtrip;
    Helpers.qcheck_to_alcotest prop_program_roundtrip;
    ("parse error carries line number", `Quick, test_parse_error_reports_line);
    ("layout resolves sites", `Quick, test_layout_sites_resolve);
    ("layout spans disjoint", `Quick, test_layout_disjoint_spans);
    ("layout total bytes", `Quick, test_layout_total);
    ("layout switch lowering sizes differ", `Quick, test_jump_table_bigger_than_ladder_for_big_switches);
  ]
