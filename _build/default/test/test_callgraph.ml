(* Call-graph construction, SCC/recursion detection, ordering. *)

open Pibe_ir
open Types
module Cg = Pibe_cg.Callgraph

let leaf prog name =
  let b = Builder.create ~name ~params:0 in
  Builder.ret b None;
  Program.add_func prog (Builder.finish b ())

let caller prog name callees =
  let prog = ref prog in
  let b = Builder.create ~name ~params:0 in
  List.iter
    (fun callee ->
      let p, site = Program.fresh_site !prog in
      prog := p;
      Builder.call b site callee [])
    callees;
  Builder.ret b None;
  Program.add_func !prog (Builder.finish b ())

let diamond () =
  let p = Program.with_globals_size Program.empty 4 in
  let p = leaf p "d" in
  let p = caller p "b" [ "d" ] in
  let p = caller p "c" [ "d" ] in
  caller p "a" [ "b"; "c" ]

let test_edges () =
  let cg = Cg.build (diamond ()) in
  Alcotest.(check int) "4 direct edges" 4 (List.length (Cg.direct_edges cg));
  Alcotest.(check int) "a has 2 callees" 2 (List.length (Cg.callees_of cg "a"));
  Alcotest.(check int) "d has 2 callers" 2 (List.length (Cg.callers_of cg "d"))

let test_reaches () =
  let cg = Cg.build (diamond ()) in
  Alcotest.(check bool) "a reaches d" true (Cg.reaches cg ~src:"a" ~dst:"d");
  Alcotest.(check bool) "d does not reach a" false (Cg.reaches cg ~src:"d" ~dst:"a");
  Alcotest.(check bool) "b does not reach c" false (Cg.reaches cg ~src:"b" ~dst:"c")

let test_bottom_up_order () =
  let cg = Cg.build (diamond ()) in
  let order = Cg.bottom_up_order cg in
  let pos x =
    let rec go i = function
      | [] -> -1
      | y :: rest -> if String.equal x y then i else go (i + 1) rest
    in
    go 0 order
  in
  Alcotest.(check bool) "d before b" true (pos "d" < pos "b");
  Alcotest.(check bool) "b before a" true (pos "b" < pos "a");
  Alcotest.(check bool) "c before a" true (pos "c" < pos "a")

let test_self_recursion_detected () =
  let p = Program.with_globals_size Program.empty 4 in
  let p, site = Program.fresh_site p in
  let b = Builder.create ~name:"rec" ~params:0 in
  Builder.call b site "rec" [];
  Builder.ret b None;
  let p = Program.add_func p (Builder.finish b ()) in
  let cg = Cg.build p in
  Alcotest.(check bool) "self loop" true (Cg.in_recursive_cycle cg "rec")

let test_mutual_recursion_detected () =
  let p = Program.with_globals_size Program.empty 4 in
  (* forward-declare by building even and odd with sites threaded *)
  let p, s1 = Program.fresh_site p in
  let p, s2 = Program.fresh_site p in
  let b = Builder.create ~name:"even" ~params:0 in
  Builder.call b s1 "odd" [];
  Builder.ret b None;
  let p = Program.add_func p (Builder.finish b ()) in
  let b = Builder.create ~name:"odd" ~params:0 in
  Builder.call b s2 "even" [];
  Builder.ret b None;
  let p = Program.add_func p (Builder.finish b ()) in
  let cg = Cg.build p in
  Alcotest.(check bool) "even cyclic" true (Cg.in_recursive_cycle cg "even");
  Alcotest.(check bool) "odd cyclic" true (Cg.in_recursive_cycle cg "odd")

let test_dag_not_recursive () =
  let cg = Cg.build (diamond ()) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " acyclic") false (Cg.in_recursive_cycle cg n))
    [ "a"; "b"; "c"; "d" ]

let test_icall_sites_listed () =
  let prog = Helpers.random_program 11 in
  let cg = Cg.build prog in
  let total =
    Program.fold_funcs prog ~init:0 ~f:(fun acc f ->
        acc + List.length (Cg.icall_sites_of cg f.fname))
  in
  Alcotest.(check int) "matches program count" (Program.total_icall_sites prog) total

let test_dot_export () =
  let cg = Cg.build (diamond ()) in
  let dot = Cg.to_dot cg in
  Alcotest.(check bool) "digraph" true (String.length dot > 20)

let prop_random_programs_acyclic =
  QCheck.Test.make ~name:"generated call graphs are acyclic" ~count:100 QCheck.small_int
    (fun seed ->
      let prog = Helpers.random_program seed in
      let cg = Cg.build prog in
      Program.fold_funcs prog ~init:true ~f:(fun acc f ->
          acc && not (Cg.in_recursive_cycle cg f.fname)))

let suite =
  [
    ("edges", `Quick, test_edges);
    ("reachability", `Quick, test_reaches);
    ("bottom-up order", `Quick, test_bottom_up_order);
    ("self recursion detected", `Quick, test_self_recursion_detected);
    ("mutual recursion detected", `Quick, test_mutual_recursion_detected);
    ("dag not recursive", `Quick, test_dag_not_recursive);
    ("icall sites listed", `Quick, test_icall_sites_listed);
    ("dot export", `Quick, test_dot_export);
    Helpers.qcheck_to_alcotest prop_random_programs_acyclic;
  ]
