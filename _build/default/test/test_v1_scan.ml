(* The Spectre-V1 scanner: it must flag the paper's Listing-3 gadget and
   stay quiet on sanitized or untainted variants. *)

open Pibe_ir
open Types
module V1 = Pibe_harden.V1_scan

(* if (index < size) { ptr = data[index]; value = *ptr; observe } *)
let listing3 ~tainted_index ~dependent =
  let b = Builder.create ~name:"victim" ~params:2 in
  let index =
    if tainted_index then Builder.param b 0
    else begin
      let r = Builder.reg b in
      Builder.assign b r (Const 3);
      r
    end
  in
  let size = Builder.param b 1 in
  let c = Builder.reg b in
  Builder.assign b c (Binop (Lt, Reg index, Reg size));
  let inbounds = Builder.new_block b in
  let out = Builder.new_block b in
  Builder.br b (Reg c) inbounds out;
  Builder.switch_to b inbounds;
  let ptr = Builder.reg b in
  Builder.assign b ptr (Load (Reg index));
  (if dependent then begin
     let v = Builder.reg b in
     Builder.assign b v (Load (Reg ptr));
     Builder.observe b (Reg v)
   end
   else Builder.observe b (Reg ptr));
  Builder.ret b None;
  Builder.switch_to b out;
  Builder.ret b None;
  Builder.finish b ()

let test_flags_listing3 () =
  let gadgets = V1.scan_func (listing3 ~tainted_index:true ~dependent:true) in
  Alcotest.(check int) "one gadget" 1 (List.length gadgets);
  let g = List.hd gadgets in
  Alcotest.(check string) "victim" "victim" g.V1.gadget_func;
  Alcotest.(check int) "guard block" 0 g.V1.branch_block;
  Alcotest.(check int) "load block" 1 g.V1.load_block

let test_quiet_without_taint () =
  Alcotest.(check int) "constant index is safe" 0
    (List.length (V1.scan_func (listing3 ~tainted_index:false ~dependent:true)))

let test_quiet_without_dependent_load () =
  Alcotest.(check int) "single fetch is not a transmitter" 0
    (List.length (V1.scan_func (listing3 ~tainted_index:true ~dependent:false)))

let test_call_sanitizes () =
  (* value laundered through a call result is treated as sanitized *)
  let prog = Program.with_globals_size Program.empty 8 in
  let prog, site = Program.fresh_site prog in
  let leaf =
    let b = Builder.create ~name:"copy_from_user" ~params:1 in
    Builder.ret b (Some (Imm 1));
    Builder.finish b ()
  in
  let prog = Program.add_func prog leaf in
  let b = Builder.create ~name:"victim" ~params:2 in
  let raw = Builder.param b 0 in
  let clean = Builder.reg b in
  Builder.call b ~dst:clean site "copy_from_user" [ Reg raw ];
  let c = Builder.reg b in
  Builder.assign b c (Binop (Lt, Reg clean, Reg (Builder.param b 1)));
  let inbounds = Builder.new_block b and out = Builder.new_block b in
  Builder.br b (Reg c) inbounds out;
  Builder.switch_to b inbounds;
  let ptr = Builder.reg b in
  Builder.assign b ptr (Load (Reg clean));
  let v = Builder.reg b in
  Builder.assign b v (Load (Reg ptr));
  Builder.observe b (Reg v);
  Builder.ret b None;
  Builder.switch_to b out;
  Builder.ret b None;
  let prog = Program.add_func prog (Builder.finish b ()) in
  let report = V1.scan prog in
  Alcotest.(check int) "no gadgets" 0 (List.length report.V1.gadgets)

let test_asm_skipped () =
  let f = listing3 ~tainted_index:true ~dependent:true in
  let f = { f with attrs = { f.attrs with is_asm = true } } in
  Alcotest.(check int) "asm bodies skipped" 0 (List.length (V1.scan_func f))

let test_kernel_scan_runs () =
  let info = Helpers.kernel () in
  let report = V1.scan info.Pibe_kernel.Gen.prog in
  Alcotest.(check bool) "scanned many branches" true (report.V1.conditional_branches > 50);
  Alcotest.(check bool) "functions counted" true
    (report.V1.functions_scanned
    = Pibe_ir.Program.func_count info.Pibe_kernel.Gen.prog);
  (* candidates are a tiny fraction of branches, as the paper notes
     ("few conditional branches are suitable gadgets") *)
  Alcotest.(check bool) "gadgets are rare" true
    (List.length report.V1.gadgets * 10 < report.V1.conditional_branches)

let suite =
  [
    ("flags the Listing-3 gadget", `Quick, test_flags_listing3);
    ("quiet without taint", `Quick, test_quiet_without_taint);
    ("quiet without a dependent load", `Quick, test_quiet_without_dependent_load);
    ("call results sanitize", `Quick, test_call_sanitizes);
    ("asm bodies skipped", `Quick, test_asm_skipped);
    ("kernel scan runs", `Quick, test_kernel_scan_runs);
  ]
