open Pibe_ir

type direct_edge = {
  caller : string;
  callee : string;
  site : Types.site;
}

type t = {
  nodes : string list;  (* layout order *)
  out_edges : (string, direct_edge list) Hashtbl.t;  (* in block order *)
  in_edges : (string, direct_edge list) Hashtbl.t;
  icalls : (string, Types.site list) Hashtbl.t;
  scc_of : (string, int) Hashtbl.t;  (* Tarjan component ids *)
  scc_cyclic : (int, bool) Hashtbl.t;
}

let get_list tbl key = Option.value ~default:[] (Hashtbl.find_opt tbl key)

let build p =
  let out_edges = Hashtbl.create 256 in
  let in_edges = Hashtbl.create 256 in
  let icalls = Hashtbl.create 256 in
  let nodes = Program.layout_order p in
  Program.iter_funcs p (fun f ->
      let outs =
        List.map
          (fun (site, callee) -> { caller = f.Types.fname; callee; site })
          (Func.call_sites f)
      in
      Hashtbl.replace out_edges f.Types.fname outs;
      List.iter
        (fun e -> Hashtbl.replace in_edges e.callee (e :: get_list in_edges e.callee))
        outs;
      Hashtbl.replace icalls f.Types.fname (Func.icall_sites f));
  (* Tarjan SCC over direct edges (iterative to survive deep kernels). *)
  let index = Hashtbl.create 256 in
  let lowlink = Hashtbl.create 256 in
  let on_stack = Hashtbl.create 256 in
  let stack = ref [] in
  let counter = ref 0 in
  let scc_of = Hashtbl.create 256 in
  let scc_cyclic = Hashtbl.create 64 in
  let next_scc = ref 0 in
  let self_loop name =
    List.exists (fun e -> String.equal e.callee name) (get_list out_edges name)
  in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun e ->
        let w = e.callee in
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Option.value ~default:false (Hashtbl.find_opt on_stack w) then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (get_list out_edges v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let id = !next_scc in
      incr next_scc;
      let members = ref [] in
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          Hashtbl.replace scc_of w id;
          members := w :: !members;
          if not (String.equal w v) then pop ()
      in
      pop ();
      let cyclic =
        match !members with
        | [ single ] -> self_loop single
        | _ -> true
      in
      Hashtbl.replace scc_cyclic id cyclic
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  { nodes; out_edges; in_edges; icalls; scc_of; scc_cyclic }

let direct_edges t = List.concat_map (fun n -> get_list t.out_edges n) t.nodes
let callees_of t name = get_list t.out_edges name
let callers_of t name = List.rev (get_list t.in_edges name)
let icall_sites_of t name = get_list t.icalls name

let in_recursive_cycle t name =
  match Hashtbl.find_opt t.scc_of name with
  | None -> false
  | Some id -> Option.value ~default:false (Hashtbl.find_opt t.scc_cyclic id)

let reaches t ~src ~dst =
  let seen = Hashtbl.create 64 in
  let rec go v =
    if String.equal v dst then true
    else if Hashtbl.mem seen v then false
    else begin
      Hashtbl.replace seen v ();
      List.exists (fun e -> go e.callee) (get_list t.out_edges v)
    end
  in
  go src

let bottom_up_order t =
  (* Post-order DFS over direct edges; cycles broken by the visited set. *)
  let seen = Hashtbl.create 256 in
  let order = ref [] in
  let rec go v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.replace seen v ();
      List.iter (fun e -> go e.callee) (get_list t.out_edges v);
      order := v :: !order
    end
  in
  List.iter go t.nodes;
  List.rev !order

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph callgraph {\n";
  List.iter
    (fun n ->
      List.iter
        (fun e ->
          Buffer.add_string buf
            (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"s%d\"];\n" e.caller e.callee
               e.site.Types.site_id))
        (get_list t.out_edges n))
    t.nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
