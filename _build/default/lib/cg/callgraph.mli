(** Static call graph over an IR program.

    Edges come in two flavours: direct (one per [Call] site) and indirect
    (one per [Icall] site, with the possible targets unknown statically —
    the profiler's value profiles fill them in).  The graph drives both
    inliners (recursion detection, bottom-up order for the LLVM-default
    inliner) and the elision statistics. *)

type direct_edge = {
  caller : string;
  callee : string;
  site : Pibe_ir.Types.site;
}

type t

val build : Pibe_ir.Program.t -> t

val direct_edges : t -> direct_edge list
(** All direct edges, in layout/block order. *)

val callees_of : t -> string -> direct_edge list
(** Direct out-edges of a function. *)

val callers_of : t -> string -> direct_edge list
(** Direct in-edges of a function. *)

val icall_sites_of : t -> string -> Pibe_ir.Types.site list
(** Promotable indirect sites inside a function. *)

val in_recursive_cycle : t -> string -> bool
(** True if the function sits on a directed cycle of direct calls
    (including self-calls); such callees are never inlined. *)

val reaches : t -> src:string -> dst:string -> bool
(** Reachability over direct edges: would inlining [dst] into [src]
    create a cycle?  ([reaches ~src:callee ~dst:caller]). *)

val bottom_up_order : t -> string list
(** Functions ordered so that (non-cyclic) callees precede their callers —
    the visit order of LLVM's default inliner (paper §8.4). *)

val to_dot : t -> string
(** Graphviz rendering, for debugging and documentation. *)
