lib/cg/callgraph.mli: Pibe_ir
