lib/cg/callgraph.ml: Buffer Func Hashtbl List Option Pibe_ir Printf Program String Types
