(** LLVM-InlineCost-style size/complexity analysis (paper §5.2, Rule 2).

    Each instruction contributes a standard cost of 5 (an approximation of
    the average encoded instruction size, as the paper notes for x86);
    nested calls cost [5 + 5 * num_args], since materializing arguments
    takes about one instruction each. *)

val standard : int
(** The standard per-instruction cost (5). *)

val inst_cost : Pibe_ir.Types.inst -> int
val term_cost : Pibe_ir.Types.terminator -> int

val func_cost : Pibe_ir.Types.func -> int
(** Sum over all instructions and terminators. *)

val rule2_default : int
(** Caller-complexity cap: 12,000 (paper's experimentally determined
    inhibitor threshold). *)

val rule3_default : int
(** Callee-complexity cap: 3,000 (LLVM's default hot threshold). *)
