type 'a selection = {
  selected : ('a * int) list;
  rejected : ('a * int) list;
  total_weight : int;
  selected_weight : int;
  cutoff_weight : int;
}

let select ~budget_pct items =
  let indexed = List.mapi (fun i (x, w) -> (i, x, w)) items in
  let sorted =
    List.sort
      (fun (i1, _, w1) (i2, _, w2) -> if w1 <> w2 then compare w2 w1 else compare i1 i2)
      indexed
  in
  let total_weight = List.fold_left (fun acc (_, w) -> acc + w) 0 items in
  let goal = budget_pct /. 100.0 *. float_of_int total_weight in
  let rec go acc_sel acc_w = function
    | [] -> (List.rev acc_sel, [], acc_w)
    | ((_, x, w) :: rest) as remaining ->
      if w > 0 && float_of_int acc_w < goal then go ((x, w) :: acc_sel) (acc_w + w) rest
      else (List.rev acc_sel, List.map (fun (_, x, w) -> (x, w)) remaining, acc_w)
  in
  let selected, rejected, selected_weight = go [] 0 sorted in
  let cutoff_weight =
    match List.rev selected with [] -> 0 | (_, w) :: _ -> w
  in
  { selected; rejected; total_weight; selected_weight; cutoff_weight }
