(** Optimization budgets (paper §5.2 Rule 1, §5.3).

    A budget is a percentage of the cumulative profiled execution count:
    at 99%, the hottest candidates that together cover 99% of all counts
    are eligible.  The paper sweeps 99, 99.9, 99.999, 99.9999 and 100. *)

type 'a selection = {
  selected : ('a * int) list;  (** hottest-first, within the budget *)
  rejected : ('a * int) list;  (** the cold tail, hottest-first *)
  total_weight : int;
  selected_weight : int;
  cutoff_weight : int;  (** weight of the coldest selected item; 0 if none *)
}

val select : budget_pct:float -> ('a * int) list -> 'a selection
(** Sorts by weight (descending; input order breaks ties, making the
    result deterministic) and selects the shortest hot prefix whose
    cumulative weight reaches [budget_pct] percent of the total.
    Zero-weight items are never selected. *)
