open Pibe_ir.Types

let standard = 5

let inst_cost = function
  | Assign _ | Store _ | Observe _ -> standard
  | Call { args; _ } | Icall { args; _ } -> standard + (standard * List.length args)
  | Asm_icall _ -> standard

let term_cost = function
  | Jmp _ -> 0
  | Br _ -> standard
  | Switch { cases; _ } -> standard + (standard * Array.length cases)
  | Ret _ -> standard

let func_cost f =
  Array.fold_left
    (fun acc b ->
      Array.fold_left (fun acc i -> acc + inst_cost i) (acc + term_cost b.term) b.insts)
    0 f.blocks

let rule2_default = 12_000
let rule3_default = 3_000
