lib/opt/budget.mli:
