lib/opt/llvm_inliner.ml: Budget Func Hashtbl Inline_cost List Pibe_cg Pibe_ir Pibe_profile Program String Transform Types
