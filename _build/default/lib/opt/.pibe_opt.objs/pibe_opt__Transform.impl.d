lib/opt/transform.ml: Array List Option Pibe_ir Printf Program Types
