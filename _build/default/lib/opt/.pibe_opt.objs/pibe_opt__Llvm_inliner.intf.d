lib/opt/llvm_inliner.mli: Pibe_ir Pibe_profile Program
