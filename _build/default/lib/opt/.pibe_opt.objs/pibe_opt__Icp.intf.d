lib/opt/icp.mli: Pibe_ir Pibe_profile Program
