lib/opt/cleanup.ml: Array Func Hashtbl Int List Option Pibe_ir Program Set Types
