lib/opt/cleanup.mli: Pibe_ir Program Types
