lib/opt/inline_cost.ml: Array List Pibe_ir
