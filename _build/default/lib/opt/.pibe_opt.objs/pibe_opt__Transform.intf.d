lib/opt/transform.mli: Pibe_ir Program Types
