lib/opt/inliner.ml: Budget Func Hashtbl Inline_cost List Pibe_cg Pibe_ir Pibe_profile Program Set String Transform Types
