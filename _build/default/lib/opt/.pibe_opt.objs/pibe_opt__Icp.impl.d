lib/opt/icp.ml: Budget Func Hashtbl List Pibe_ir Pibe_profile Program String Transform Types
