lib/opt/inliner.mli: Pibe_ir Pibe_profile Program
