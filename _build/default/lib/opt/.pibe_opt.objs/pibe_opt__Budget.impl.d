lib/opt/budget.ml: List
