lib/opt/inline_cost.mli: Pibe_ir
