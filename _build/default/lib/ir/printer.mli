(** Textual rendering of the IR; [Parser] reads the same syntax back. *)

open Types

val operand_to_string : operand -> string
val expr_to_string : expr -> string
val inst_to_string : inst -> string
val term_to_string : terminator -> string
val func_to_string : func -> string

val program_to_string : Program.t -> string
(** Header (globals size, memory initializers, fptr table) followed by
    every function in layout order. *)
