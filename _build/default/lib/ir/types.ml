(** Core IR type definitions.

    The IR is a classic unstructured CFG over mutable virtual registers (no
    SSA): a function is an array of basic blocks, each a run of simple
    instructions closed by a terminator.  It is deliberately small — just
    rich enough to express everything PIBE's passes care about:

    - direct calls (inlinable, forward edges with static targets);
    - indirect calls through function-pointer values loaded from memory
      (ICP candidates, Spectre-V2/LVI surface);
    - returns (backward edges, Ret2spec/LVI surface);
    - switches that may be lowered either to jump tables (indirect jumps)
      or to compare ladders (the hardened form);
    - opaque inline-assembly indirect calls that no pass may touch (the
      kernel's para-virtualization layer in the paper, §8.6);
    - observable outputs, so that transformation passes can be checked for
      semantic preservation by differential interpretation. *)

type reg = int
(** Virtual register index, local to a function activation. *)

type label = int
(** Basic-block index into the enclosing function's [blocks] array. *)

type binop = Add | Sub | Mul | Xor | And | Or | Shl | Shr | Lt | Eq

type operand =
  | Reg of reg
  | Imm of int

type expr =
  | Const of int
  | Move of operand
  | Binop of binop * operand * operand
  | Load of operand  (** read of the global memory cell addressed by the operand *)

type site = {
  site_id : int;  (** unique across the program, fresh after cloning *)
  site_origin : int;  (** pre-clone identity; profile counts key on this *)
}

type inst =
  | Assign of reg * expr
  | Store of operand * operand  (** [Store (addr, v)] writes global memory *)
  | Observe of operand  (** appends the value to the observable trace *)
  | Call of {
      dst : reg option;
      callee : string;
      args : operand list;
      site : site;
      tail : bool;  (** tail position: lowered as an indirect jump pair *)
    }
  | Icall of {
      dst : reg option;
      fptr : operand;  (** function index into the program's fptr table *)
      args : operand list;
      site : site;
    }
  | Asm_icall of {
      fptr : operand;
      site : site;
    }  (** inline-assembly indirect call: opaque, never promoted/hardened *)

type switch_lowering =
  | Jump_table  (** indirect jump through an in-memory table *)
  | Branch_ladder  (** compare-and-branch chain; transient-safe *)

type terminator =
  | Jmp of label
  | Br of operand * label * label  (** non-zero -> first label *)
  | Switch of {
      scrutinee : operand;
      cases : (int * label) array;
      default : label;
      lowering : switch_lowering;
    }
  | Ret of operand option

type block = {
  insts : inst array;
  term : terminator;
}

type attrs = {
  noinline : bool;  (** callee may never be inlined *)
  optnone : bool;  (** function is never modified by any pass *)
  is_asm : bool;  (** body stands for inline assembly; opaque *)
  boot_only : bool;  (** executes only during boot; exempt from backward-edge hardening *)
  subsystem : string;  (** provenance tag from the kernel generator *)
}

type func = {
  fname : string;
  params : int;  (** registers [0 .. params-1] hold arguments on entry *)
  nregs : int;  (** register-file size; all registers start at 0 *)
  entry : label;
  blocks : block array;
  attrs : attrs;
}

let default_attrs =
  { noinline = false; optnone = false; is_asm = false; boot_only = false; subsystem = "" }

let no_site = { site_id = -1; site_origin = -1 }

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Xor -> "xor"
  | And -> "and"
  | Or -> "or"
  | Shl -> "shl"
  | Shr -> "shr"
  | Lt -> "lt"
  | Eq -> "eq"

let binop_of_name = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "xor" -> Some Xor
  | "and" -> Some And
  | "or" -> Some Or
  | "shl" -> Some Shl
  | "shr" -> Some Shr
  | "lt" -> Some Lt
  | "eq" -> Some Eq
  | _ -> None

let all_binops = [ Add; Sub; Mul; Xor; And; Or; Shl; Shr; Lt; Eq ]

(* Arithmetic is 63-bit OCaml-int arithmetic; the simulated machine only
   needs determinism, not exact x86 widths. *)
let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Xor -> a lxor b
  | And -> a land b
  | Or -> a lor b
  | Shl -> a lsl (b land 31)
  | Shr -> a lsr (b land 31)
  | Lt -> if a < b then 1 else 0
  | Eq -> if a = b then 1 else 0
