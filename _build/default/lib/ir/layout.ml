open Types

type t = {
  addrs : (string, int) Hashtbl.t;
  sizes : (string, int) Hashtbl.t;
  site_addrs : (int, int) Hashtbl.t;
  (* sorted (start, end_exclusive, name) for address -> function lookup *)
  spans : (int * int * string) array;
  addr_sites : (int, int) Hashtbl.t; (* address -> site_id *)
  total : int;
}

let inst_size = function
  | Assign (_, Const _) -> 5 (* mov $imm, reg *)
  | Assign (_, Move _) -> 3
  | Assign (_, Binop _) -> 4
  | Assign (_, Load _) -> 4
  | Store _ -> 4
  | Observe _ -> 5 (* call to a tracepoint stub *)
  | Call _ -> 5 (* call rel32 *)
  | Icall _ -> 3 (* call *reg *)
  | Asm_icall _ -> 7 (* call *mem with ModRM+disp, as in pv_ops macros *)

let term_size = function
  | Jmp _ -> 2
  | Br _ -> 6 (* test + jcc *)
  | Switch { cases; lowering = Jump_table; _ } ->
    7 + (8 * Array.length cases) (* bounds check + jmp *table, plus the table *)
  | Switch { cases; lowering = Branch_ladder; _ } ->
    10 * Array.length cases (* cmp $imm + jcc per case *)
  | Ret _ -> 1

let align16 n = (n + 15) land lnot 15

let func_size f =
  let body =
    Array.fold_left
      (fun acc b ->
        let insts = Array.fold_left (fun a i -> a + inst_size i) 0 b.insts in
        acc + insts + term_size b.term)
      0 f.blocks
  in
  align16 body

let build p =
  let addrs = Hashtbl.create 256 in
  let sizes = Hashtbl.create 256 in
  let site_addrs = Hashtbl.create 1024 in
  let addr_sites = Hashtbl.create 1024 in
  let spans = ref [] in
  let cursor = ref 0x1000 in
  Program.iter_funcs p (fun f ->
      let base = !cursor in
      Hashtbl.replace addrs f.fname base;
      (* Walk the body assigning per-instruction offsets so call sites get
         exact addresses. *)
      let off = ref 0 in
      Array.iter
        (fun b ->
          Array.iter
            (fun i ->
              (match i with
              | Call { site; _ } | Icall { site; _ } | Asm_icall { site; _ } ->
                let a = base + !off in
                Hashtbl.replace site_addrs site.site_id a;
                Hashtbl.replace addr_sites a site.site_id
              | Assign _ | Store _ | Observe _ -> ());
              off := !off + inst_size i)
            b.insts;
          off := !off + term_size b.term)
        f.blocks;
      let size = align16 !off in
      Hashtbl.replace sizes f.fname size;
      spans := (base, base + size, f.fname) :: !spans;
      cursor := base + size);
  let spans = Array.of_list (List.rev !spans) in
  { addrs; sizes; site_addrs; spans; addr_sites; total = !cursor - 0x1000 }

let func_addr t name = Hashtbl.find t.addrs name
let func_size_of t name = Hashtbl.find t.sizes name
let site_addr t id = Hashtbl.find t.site_addrs id

let func_at t addr =
  (* Binary search over sorted, disjoint spans. *)
  let lo = ref 0 and hi = ref (Array.length t.spans - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let s, e, name = t.spans.(mid) in
    if addr < s then hi := mid - 1
    else if addr >= e then lo := mid + 1
    else begin
      found := Some name;
      lo := !hi + 1
    end
  done;
  !found

let site_at t addr = Hashtbl.find_opt t.addr_sites addr
let total_code_bytes t = t.total
