(** Binary code layout: byte sizes and addresses for functions and call
    sites.

    The profiler records branch events at *addresses* (as the paper's
    LBR-based profiler does); lifting those events back to IR identifiers
    goes through this symbol table.  Image-size statistics (paper Table 12)
    also derive from it. *)

open Types

type t

val inst_size : inst -> int
(** Encoded size in bytes of one instruction (x86-64-flavoured estimates;
    the standard InlineCost unit of 5 approximates the average). *)

val term_size : terminator -> int
(** Jump-table switches count 7 bytes of code plus 8 bytes of table per
    case; ladder switches count a compare-and-branch pair per case. *)

val func_size : func -> int
(** Code bytes of the function body, 16-byte aligned at the end. *)

val build : Program.t -> t
(** Assigns addresses in layout order, starting at [0x1000]. *)

val func_addr : t -> string -> int
(** Raises [Not_found] for unknown functions. *)

val func_size_of : t -> string -> int
val site_addr : t -> int -> int
(** Address of a call site, by [site_id].  Raises [Not_found]. *)

val func_at : t -> int -> string option
(** Which function covers the given address, if any. *)

val site_at : t -> int -> int option
(** Which call site sits at exactly the given address, if any. *)

val total_code_bytes : t -> int
(** Sum of all function sizes (the text-segment size before hardening
    thunks are added). *)
