open Types

exception Parse_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Tokenizer: identifiers/numbers/sigil-words and single-char puncts.  *)
(* ------------------------------------------------------------------ *)

let tokenize lineno s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_word c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '@' || c = '!' || c = '-'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if is_word c then begin
      let start = !i in
      while !i < n && is_word s.[!i] do
        incr i
      done;
      toks := String.sub s start (!i - start) :: !toks
    end
    else
      match c with
      | ',' | '(' | ')' | '[' | ']' | ':' | '=' | '<' | '{' | '}' ->
        toks := String.make 1 c :: !toks;
        incr i
      | _ -> fail lineno "unexpected character %c" c
  done;
  List.rev !toks

let int_of_token lineno t =
  match int_of_string_opt t with
  | Some v -> v
  | None -> fail lineno "expected integer, got %S" t

let reg_of_token lineno t =
  if String.length t >= 2 && t.[0] = 'r' then
    match int_of_string_opt (String.sub t 1 (String.length t - 1)) with
    | Some v -> v
    | None -> fail lineno "expected register, got %S" t
  else fail lineno "expected register, got %S" t

let label_of_token lineno t =
  if String.length t >= 3 && String.sub t 0 2 = "bb" then
    match int_of_string_opt (String.sub t 2 (String.length t - 2)) with
    | Some v -> v
    | None -> fail lineno "expected block label, got %S" t
  else fail lineno "expected block label, got %S" t

let fname_of_token lineno t =
  if String.length t >= 2 && t.[0] = '@' then String.sub t 1 (String.length t - 1)
  else fail lineno "expected @function, got %S" t

let operand_of_token lineno t =
  if String.length t >= 1 && t.[0] = 'r' && String.length t >= 2 && t.[1] >= '0' && t.[1] <= '9'
  then Reg (reg_of_token lineno t)
  else Imm (int_of_token lineno t)

(* ------------------------------------------------------------------ *)
(* Statement parsing over token lists.                                 *)
(* ------------------------------------------------------------------ *)

let parse_site lineno = function
  | "!site" :: id :: "<" :: origin :: rest ->
    ({ site_id = int_of_token lineno id; site_origin = int_of_token lineno origin }, rest)
  | "!site" :: id :: rest ->
    let id = int_of_token lineno id in
    ({ site_id = id; site_origin = id }, rest)
  | toks -> fail lineno "expected !site annotation near %S" (String.concat " " toks)

let parse_args lineno toks =
  let rec go acc = function
    | ")" :: rest -> (List.rev acc, rest)
    | "," :: rest -> go acc rest
    | t :: rest -> go (operand_of_token lineno t :: acc) rest
    | [] -> fail lineno "unterminated argument list"
  in
  match toks with
  | "(" :: rest -> go [] rest
  | _ -> fail lineno "expected argument list"

let parse_expr lineno toks =
  match toks with
  | "const" :: v :: rest -> (Const (int_of_token lineno v), rest)
  | "move" :: o :: rest -> (Move (operand_of_token lineno o), rest)
  | "load" :: o :: rest -> (Load (operand_of_token lineno o), rest)
  | op :: a :: "," :: b :: rest -> (
    match binop_of_name op with
    | Some bop -> (Binop (bop, operand_of_token lineno a, operand_of_token lineno b), rest)
    | None -> fail lineno "unknown operator %S" op)
  | _ -> fail lineno "malformed expression"

let parse_call lineno ~dst ~tail toks =
  match toks with
  | fn :: rest ->
    let callee = fname_of_token lineno fn in
    let args, rest = parse_args lineno rest in
    let site, rest = parse_site lineno rest in
    if rest <> [] then fail lineno "trailing tokens after call";
    Call { dst; callee; args; site; tail }
  | [] -> fail lineno "malformed call"

let parse_icall lineno ~dst toks =
  match toks with
  | fp :: rest ->
    let fptr = operand_of_token lineno fp in
    let args, rest = parse_args lineno rest in
    let site, rest = parse_site lineno rest in
    if rest <> [] then fail lineno "trailing tokens after icall";
    Icall { dst; fptr; args; site }
  | [] -> fail lineno "malformed icall"

let parse_inst lineno toks =
  match toks with
  | "store" :: a :: "," :: v :: [] ->
    Store (operand_of_token lineno a, operand_of_token lineno v)
  | "observe" :: v :: [] -> Observe (operand_of_token lineno v)
  | "call" :: rest -> parse_call lineno ~dst:None ~tail:false rest
  | "tailcall" :: rest -> parse_call lineno ~dst:None ~tail:true rest
  | "icall" :: rest -> parse_icall lineno ~dst:None rest
  | "asm_icall" :: fp :: rest ->
    let fptr = operand_of_token lineno fp in
    let site, rest = parse_site lineno rest in
    if rest <> [] then fail lineno "trailing tokens after asm_icall";
    Asm_icall { fptr; site }
  | r :: "=" :: rest -> (
    let dst = reg_of_token lineno r in
    match rest with
    | "call" :: rest -> parse_call lineno ~dst:(Some dst) ~tail:false rest
    | "tailcall" :: rest -> parse_call lineno ~dst:(Some dst) ~tail:true rest
    | "icall" :: rest -> parse_icall lineno ~dst:(Some dst) rest
    | rest ->
      let e, leftover = parse_expr lineno rest in
      if leftover <> [] then fail lineno "trailing tokens after expression";
      Assign (dst, e))
  | toks -> fail lineno "unrecognized instruction %S" (String.concat " " toks)

let parse_cases lineno toks =
  let rec go acc = function
    | "]" :: rest -> (List.rev acc, rest)
    | "," :: rest -> go acc rest
    | v :: ":" :: l :: rest ->
      go ((int_of_token lineno v, label_of_token lineno l) :: acc) rest
    | _ -> fail lineno "malformed switch cases"
  in
  match toks with
  | "[" :: rest -> go [] rest
  | _ -> fail lineno "expected [cases]"

let parse_term lineno toks =
  match toks with
  | [ "jmp"; l ] -> Jmp (label_of_token lineno l)
  | [ "br"; c; ","; l1; ","; l2 ] ->
    Br (operand_of_token lineno c, label_of_token lineno l1, label_of_token lineno l2)
  | "switch" :: scrut :: "," :: rest ->
    let cases, rest = parse_cases lineno rest in
    let default, lowering =
      match rest with
      | [ ","; "default"; d; ","; low ] ->
        let lowering =
          match low with
          | "jump_table" -> Jump_table
          | "ladder" -> Branch_ladder
          | other -> fail lineno "unknown switch lowering %S" other
        in
        (label_of_token lineno d, lowering)
      | _ -> fail lineno "malformed switch tail"
    in
    Switch
      { scrutinee = operand_of_token lineno scrut; cases = Array.of_list cases; default; lowering }
  | [ "ret" ] -> Ret None
  | [ "ret"; v ] -> Ret (Some (operand_of_token lineno v))
  | _ -> fail lineno "unrecognized terminator"

let is_term_line toks =
  match toks with
  | ("jmp" | "br" | "switch" | "ret") :: _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Function and program structure.                                     *)
(* ------------------------------------------------------------------ *)

type lines = { mutable remaining : (int * string) list }

let next_nonempty ls =
  let rec go = function
    | [] -> None
    | (_, l) :: rest when String.trim l = "" -> ls.remaining <- rest; go rest
    | (n, l) :: rest ->
      ls.remaining <- rest;
      Some (n, String.trim l)
  in
  go ls.remaining

let parse_attrs lineno toks =
  let rec set a = function
    | [] -> a
    | "noinline" :: rest -> set { a with noinline = true } rest
    | "optnone" :: rest -> set { a with optnone = true } rest
    | "asm" :: rest -> set { a with is_asm = true } rest
    | "boot_only" :: rest -> set { a with boot_only = true } rest
    | "subsystem" :: "=" :: s :: rest -> set { a with subsystem = s } rest
    | "," :: rest -> set a rest
    | t :: _ -> fail lineno "unknown attribute %S" t
  in
  set default_attrs toks

let parse_func_header lineno toks =
  match toks with
  | fn :: "(" :: "params" :: "=" :: p :: "," :: "regs" :: "=" :: r :: ")" :: rest ->
    let name = fname_of_token lineno fn in
    let params = int_of_token lineno p in
    let nregs = int_of_token lineno r in
    let attrs =
      match rest with
      | [ "{" ] -> default_attrs
      | "[" :: more -> (
        let rec split acc = function
          | "]" :: tail -> (List.rev acc, tail)
          | t :: tail -> split (t :: acc) tail
          | [] -> fail lineno "unterminated attribute list"
        in
        let attr_toks, tail = split [] more in
        match tail with
        | [ "{" ] -> parse_attrs lineno attr_toks
        | _ -> fail lineno "expected { after attributes")
      | _ -> fail lineno "malformed function header"
    in
    (name, params, nregs, attrs)
  | _ -> fail lineno "malformed function header"

let parse_func_body ls ~lineno ~name ~params ~nregs ~attrs =
  let blocks = ref [] (* (label, insts rev, term) in reverse discovery order *) in
  let cur_label = ref (-1) in
  let cur_insts = ref [] in
  let cur_term = ref None in
  let flush line =
    if !cur_label >= 0 then begin
      match !cur_term with
      | None -> fail line "block bb%d of %s lacks a terminator" !cur_label name
      | Some t ->
        blocks := (!cur_label, List.rev !cur_insts, t) :: !blocks;
        cur_label := -1;
        cur_insts := [];
        cur_term := None
    end
  in
  let rec loop () =
    match next_nonempty ls with
    | None -> fail lineno "unterminated function %s" name
    | Some (n, line) -> (
      let toks = tokenize n line in
      match toks with
      | [ "}" ] -> flush n
      | [ bb; ":" ] when String.length bb > 2 && String.sub bb 0 2 = "bb" ->
        flush n;
        cur_label := label_of_token n bb;
        loop ()
      | toks when is_term_line toks ->
        if !cur_label < 0 then fail n "terminator outside block";
        cur_term := Some (parse_term n toks);
        loop ()
      | toks ->
        if !cur_label < 0 then fail n "instruction outside block";
        (match !cur_term with
        | Some _ -> fail n "instruction after terminator in bb%d" !cur_label
        | None -> ());
        cur_insts := parse_inst n toks :: !cur_insts;
        loop ())
  in
  loop ();
  let discovered = List.rev !blocks in
  let nblocks = List.fold_left (fun acc (l, _, _) -> max acc (l + 1)) 0 discovered in
  let arr = Array.make (max nblocks 1) None in
  List.iter
    (fun (l, insts, term) ->
      if arr.(l) <> None then fail lineno "duplicate block bb%d in %s" l name;
      arr.(l) <- Some { insts = Array.of_list insts; term })
    discovered;
  let blocks =
    Array.mapi
      (fun l b ->
        match b with
        | Some b -> b
        | None -> fail lineno "missing block bb%d in %s" l name)
      arr
  in
  { fname = name; params; nregs; entry = 0; blocks; attrs }

let parse_func_from ls lineno toks =
  let name, params, nregs, attrs = parse_func_header lineno toks in
  parse_func_body ls ~lineno ~name ~params ~nregs ~attrs

let parse_func text =
  let ls =
    { remaining = List.mapi (fun i l -> (i + 1, l)) (String.split_on_char '\n' text) }
  in
  match next_nonempty ls with
  | Some (n, line) -> (
    match tokenize n line with
    | "func" :: rest -> parse_func_from ls n rest
    | _ -> fail n "expected func definition")
  | None -> fail 0 "empty input"

let parse_program text =
  let ls =
    { remaining = List.mapi (fun i l -> (i + 1, l)) (String.split_on_char '\n' text) }
  in
  let prog = ref Program.empty in
  let parse_header_line n toks =
    match toks with
    | [ "globals"; sz ] -> prog := Program.with_globals_size !prog (int_of_token n sz)
    | [ "init"; a; "="; v ] ->
      prog := Program.set_global !prog ~addr:(int_of_token n a) ~value:(int_of_token n v)
    | [ "fptr"; _idx; "="; fn ] ->
      let p, _ = Program.add_fptr !prog (fname_of_token n fn) in
      prog := p
    | [ "next_site"; _ ] -> () (* re-derived below *)
    | _ -> fail n "unknown program header entry %S" (String.concat " " toks)
  in
  let rec header () =
    match next_nonempty ls with
    | None -> fail 0 "unterminated program header"
    | Some (n, line) -> (
      match tokenize n line with
      | [ "}" ] -> ()
      | toks ->
        parse_header_line n toks;
        header ())
  in
  (match next_nonempty ls with
  | Some (n, line) -> (
    match tokenize n line with
    | [ "program"; "{" ] -> header ()
    | _ -> fail n "expected program header")
  | None -> fail 0 "empty input");
  let max_site = ref (-1) in
  let rec funcs () =
    match next_nonempty ls with
    | None -> ()
    | Some (n, line) -> (
      match tokenize n line with
      | "func" :: rest ->
        let f = parse_func_from ls n rest in
        max_site := max !max_site (Func.max_site_id f);
        prog := Program.add_func !prog f;
        funcs ()
      | _ -> fail n "expected func definition")
  in
  funcs ();
  (* Restore the site counter past every id in the image. *)
  let rec bump p =
    if p.Program.next_site > !max_site then p
    else
      let p, _ = Program.fresh_site p in
      bump p
  in
  bump !prog
