(** Parser for the textual IR produced by {!Printer}.

    Round-trip guarantee (checked by property tests):
    [parse_program (Printer.program_to_string p)] is structurally equal to
    [p] up to the ordering normalization of memory initializers. *)

exception Parse_error of { line : int; message : string }

val parse_func : string -> Types.func
(** Parses a single [func @name(...) { ... }] definition. *)

val parse_program : string -> Program.t
(** Parses a full image: the [program { ... }] header followed by function
    definitions. *)
