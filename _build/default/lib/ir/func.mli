(** Accessors and traversals over IR functions. *)

open Types

val block : func -> label -> block
(** Raises [Invalid_argument] on out-of-range labels. *)

val iter_insts : func -> (label -> inst -> unit) -> unit
(** All instructions, in block order. *)

val iter_terms : func -> (label -> terminator -> unit) -> unit

val fold_insts : func -> init:'a -> f:('a -> inst -> 'a) -> 'a

val map_blocks : func -> f:(label -> block -> block) -> func

val call_sites : func -> (site * string) list
(** Direct-call sites with their callees, in block order. *)

val icall_sites : func -> site list
(** Promotable indirect-call sites (excludes [Asm_icall]). *)

val asm_icall_sites : func -> site list

val ret_count : func -> int
(** Number of [Ret] terminators (backward edges emitted for this
    function). *)

val jump_table_count : func -> int
(** Switch terminators currently lowered as jump tables. *)

val inst_count : func -> int
(** Total instruction count, terminators included. *)

val successors : terminator -> label list

val reachable_labels : func -> bool array
(** [reachable_labels f] marks blocks reachable from the entry. *)

val max_site_id : func -> int
(** Largest [site_id] appearing in the function; [-1] if none. *)

val rename_sites : func -> fresh:(site -> site) -> func
(** Rewrites every call-site id (used when cloning bodies during
    inlining). *)
