(** Structural well-formedness checks, run after generation and after every
    transformation pass in tests. *)

type error = {
  where : string;  (** function name, or "" for program-level issues *)
  what : string;
}

val check_func : Types.func -> error list
(** Labels in range, registers within the register file, parameters within
    bounds, blocks non-aliasing, entry = 0. *)

val check_program : Program.t -> error list
(** Per-function checks plus: direct-call callees exist, fptr-table names
    exist, call-site ids are unique program-wide and below [next_site]. *)

val check_exn : Program.t -> unit
(** Raises [Invalid_argument] with a readable summary if any check
    fails. *)
