open Types

let operand_to_string = function
  | Reg r -> Printf.sprintf "r%d" r
  | Imm i -> string_of_int i

let expr_to_string = function
  | Const i -> Printf.sprintf "const %d" i
  | Move o -> Printf.sprintf "move %s" (operand_to_string o)
  | Binop (op, a, b) ->
    Printf.sprintf "%s %s, %s" (binop_name op) (operand_to_string a) (operand_to_string b)
  | Load a -> Printf.sprintf "load %s" (operand_to_string a)

let site_to_string s =
  if s.site_origin = s.site_id then Printf.sprintf "!site %d" s.site_id
  else Printf.sprintf "!site %d<%d" s.site_id s.site_origin

let args_to_string args = String.concat ", " (List.map operand_to_string args)

let inst_to_string = function
  | Assign (r, e) -> Printf.sprintf "r%d = %s" r (expr_to_string e)
  | Store (a, v) -> Printf.sprintf "store %s, %s" (operand_to_string a) (operand_to_string v)
  | Observe v -> Printf.sprintf "observe %s" (operand_to_string v)
  | Call { dst; callee; args; site; tail } ->
    let kw = if tail then "tailcall" else "call" in
    let prefix = match dst with Some r -> Printf.sprintf "r%d = " r | None -> "" in
    Printf.sprintf "%s%s @%s(%s) %s" prefix kw callee (args_to_string args)
      (site_to_string site)
  | Icall { dst; fptr; args; site } ->
    let prefix = match dst with Some r -> Printf.sprintf "r%d = " r | None -> "" in
    Printf.sprintf "%sicall %s(%s) %s" prefix (operand_to_string fptr)
      (args_to_string args) (site_to_string site)
  | Asm_icall { fptr; site } ->
    Printf.sprintf "asm_icall %s %s" (operand_to_string fptr) (site_to_string site)

let term_to_string = function
  | Jmp l -> Printf.sprintf "jmp bb%d" l
  | Br (c, l1, l2) -> Printf.sprintf "br %s, bb%d, bb%d" (operand_to_string c) l1 l2
  | Switch { scrutinee; cases; default; lowering } ->
    let cases_s =
      String.concat ", "
        (Array.to_list (Array.map (fun (v, l) -> Printf.sprintf "%d: bb%d" v l) cases))
    in
    let low = match lowering with Jump_table -> "jump_table" | Branch_ladder -> "ladder" in
    Printf.sprintf "switch %s, [%s], default bb%d, %s" (operand_to_string scrutinee)
      cases_s default low
  | Ret None -> "ret"
  | Ret (Some v) -> Printf.sprintf "ret %s" (operand_to_string v)

let attrs_to_string a =
  let flags =
    List.filter_map
      (fun (cond, s) -> if cond then Some s else None)
      [
        (a.noinline, "noinline");
        (a.optnone, "optnone");
        (a.is_asm, "asm");
        (a.boot_only, "boot_only");
      ]
  in
  let flags =
    if String.equal a.subsystem "" then flags else flags @ [ "subsystem=" ^ a.subsystem ]
  in
  match flags with [] -> "" | fs -> Printf.sprintf " [%s]" (String.concat "," fs)

let func_to_string f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "func @%s(params=%d, regs=%d)%s {\n" f.fname f.params f.nregs
       (attrs_to_string f.attrs));
  Array.iteri
    (fun l b ->
      Buffer.add_string buf (Printf.sprintf "bb%d:\n" l);
      Array.iter
        (fun i -> Buffer.add_string buf (Printf.sprintf "  %s\n" (inst_to_string i)))
        b.insts;
      Buffer.add_string buf (Printf.sprintf "  %s\n" (term_to_string b.term)))
    f.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let program_to_string p =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "program {\n";
  Buffer.add_string buf (Printf.sprintf "  globals %d\n" p.Program.globals_size);
  List.iter
    (fun (addr, v) -> Buffer.add_string buf (Printf.sprintf "  init %d = %d\n" addr v))
    (List.rev p.Program.rev_globals_init);
  Array.iteri
    (fun i name -> Buffer.add_string buf (Printf.sprintf "  fptr %d = @%s\n" i name))
    p.Program.fptr_table;
  Buffer.add_string buf (Printf.sprintf "  next_site %d\n" p.Program.next_site);
  Buffer.add_string buf "}\n";
  Program.iter_funcs p (fun f ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (func_to_string f));
  Buffer.contents buf
