(** Imperative construction of IR functions.

    The builder hands out fresh registers and blocks, tracks a current
    insertion block, and checks on [finish] that every block was sealed
    with a terminator.  Call-site ids are supplied by the caller (usually
    via [Program.fresh_site]) so the builder stays program-agnostic. *)

open Types

type t

val create : name:string -> params:int -> t
(** Starts a function; the entry block exists and is current. *)

val name : t -> string

val reg : t -> reg
(** Fresh virtual register. *)

val param : t -> int -> reg
(** [param b i] is the register holding argument [i]; raises
    [Invalid_argument] when [i >= params]. *)

val new_block : t -> label
(** Fresh, unsealed block (does not change the insertion point). *)

val switch_to : t -> label -> unit
(** Moves the insertion point; the target must not be sealed yet. *)

val current : t -> label

(** {2 Instruction emission (into the current block)} *)

val assign : t -> reg -> expr -> unit
val store : t -> addr:operand -> value:operand -> unit
val observe : t -> operand -> unit
val call : t -> ?dst:reg -> ?tail:bool -> site -> string -> operand list -> unit
val icall : t -> ?dst:reg -> site -> operand list -> fptr:operand -> unit
val asm_icall : t -> site -> fptr:operand -> unit

(** {2 Terminators (seal the current block)} *)

val jmp : t -> label -> unit
val br : t -> operand -> label -> label -> unit
val switch : t -> ?lowering:switch_lowering -> operand -> (int * label) list -> default:label -> unit
val ret : t -> operand option -> unit

val finish : t -> ?attrs:attrs -> unit -> func
(** Raises [Invalid_argument] if any block lacks a terminator. *)
