open Types

type proto_block = {
  mutable rev_insts : inst list;
  mutable pterm : terminator option;
}

type t = {
  bname : string;
  bparams : int;
  mutable bnregs : int;
  mutable bblocks : proto_block array;
  mutable nblocks : int;
  mutable cur : label;
}

let fresh_proto () = { rev_insts = []; pterm = None }

let create ~name ~params =
  let blocks = Array.init 8 (fun _ -> fresh_proto ()) in
  { bname = name; bparams = params; bnregs = params; bblocks = blocks; nblocks = 1; cur = 0 }

let name b = b.bname

let reg b =
  let r = b.bnregs in
  b.bnregs <- r + 1;
  r

let param b i =
  if i < 0 || i >= b.bparams then
    invalid_arg (Printf.sprintf "Builder.param: %d out of range in %s" i b.bname)
  else i

let grow b =
  if b.nblocks >= Array.length b.bblocks then begin
    let bigger = Array.init (2 * Array.length b.bblocks) (fun _ -> fresh_proto ()) in
    Array.blit b.bblocks 0 bigger 0 b.nblocks;
    b.bblocks <- bigger
  end

let new_block b =
  grow b;
  let l = b.nblocks in
  b.bblocks.(l) <- fresh_proto ();
  b.nblocks <- l + 1;
  l

let check_open b ctx =
  let pb = b.bblocks.(b.cur) in
  match pb.pterm with
  | Some _ ->
    invalid_arg (Printf.sprintf "Builder.%s: block %d of %s already sealed" ctx b.cur b.bname)
  | None -> pb

let switch_to b l =
  if l < 0 || l >= b.nblocks then
    invalid_arg (Printf.sprintf "Builder.switch_to: bad label %d in %s" l b.bname);
  (match b.bblocks.(l).pterm with
  | Some _ -> invalid_arg (Printf.sprintf "Builder.switch_to: block %d of %s sealed" l b.bname)
  | None -> ());
  b.cur <- l

let current b = b.cur

let emit b ctx i =
  let pb = check_open b ctx in
  pb.rev_insts <- i :: pb.rev_insts

let assign b r e = emit b "assign" (Assign (r, e))
let store b ~addr ~value = emit b "store" (Store (addr, value))
let observe b v = emit b "observe" (Observe v)

let call b ?dst ?(tail = false) site callee args =
  emit b "call" (Call { dst; callee; args; site; tail })

let icall b ?dst site args ~fptr = emit b "icall" (Icall { dst; fptr; args; site })
let asm_icall b site ~fptr = emit b "asm_icall" (Asm_icall { fptr; site })

let seal b ctx term =
  let pb = check_open b ctx in
  pb.pterm <- Some term

let jmp b l = seal b "jmp" (Jmp l)
let br b c l1 l2 = seal b "br" (Br (c, l1, l2))

let switch b ?(lowering = Jump_table) scrutinee cases ~default =
  seal b "switch" (Switch { scrutinee; cases = Array.of_list cases; default; lowering })

let ret b v = seal b "ret" (Ret v)

let finish b ?(attrs = default_attrs) () =
  let blocks =
    Array.init b.nblocks (fun l ->
        let pb = b.bblocks.(l) in
        match pb.pterm with
        | None ->
          invalid_arg
            (Printf.sprintf "Builder.finish: block %d of %s has no terminator" l b.bname)
        | Some term -> { insts = Array.of_list (List.rev pb.rev_insts); term })
  in
  {
    fname = b.bname;
    params = b.bparams;
    nregs = b.bnregs;
    entry = 0;
    blocks;
    attrs;
  }
