lib/ir/layout.mli: Program Types
