lib/ir/validate.mli: Program Types
