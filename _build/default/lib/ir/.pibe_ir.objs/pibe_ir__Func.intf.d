lib/ir/func.mli: Types
