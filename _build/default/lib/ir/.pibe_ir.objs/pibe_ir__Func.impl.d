lib/ir/func.ml: Array List Printf Types
