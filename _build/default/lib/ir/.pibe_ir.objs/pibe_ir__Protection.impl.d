lib/ir/protection.ml:
