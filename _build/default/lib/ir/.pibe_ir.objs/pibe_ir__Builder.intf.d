lib/ir/builder.mli: Types
