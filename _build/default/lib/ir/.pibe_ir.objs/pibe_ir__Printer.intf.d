lib/ir/printer.mli: Program Types
