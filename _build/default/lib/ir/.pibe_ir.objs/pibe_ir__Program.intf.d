lib/ir/program.mli: Map Types
