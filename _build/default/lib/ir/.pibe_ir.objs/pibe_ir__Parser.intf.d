lib/ir/parser.mli: Program Types
