lib/ir/types.ml:
