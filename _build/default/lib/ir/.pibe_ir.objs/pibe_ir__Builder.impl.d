lib/ir/builder.ml: Array List Printf Types
