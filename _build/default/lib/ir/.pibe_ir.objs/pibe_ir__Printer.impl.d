lib/ir/printer.ml: Array Buffer List Printf Program String Types
