lib/ir/parser.ml: Array Func List Printf Program String Types
