lib/ir/validate.ml: Array Func Hashtbl List Printf Program String Types
