lib/ir/layout.ml: Array Hashtbl List Program Types
