lib/ir/program.ml: Array Func List Map Printf String Types
