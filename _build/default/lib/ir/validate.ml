open Types

type error = {
  where : string;
  what : string;
}

let err where fmt = Printf.ksprintf (fun what -> { where; what }) fmt

let check_operand f errs ctx = function
  | Imm _ -> errs
  | Reg r ->
    if r < 0 || r >= f.nregs then err f.fname "%s: register r%d out of range" ctx r :: errs
    else errs

let check_expr f errs ctx = function
  | Const _ -> errs
  | Move o | Load o -> check_operand f errs ctx o
  | Binop (_, a, b) -> check_operand f (check_operand f errs ctx a) ctx b

let check_label f errs ctx l =
  if l < 0 || l >= Array.length f.blocks then
    err f.fname "%s: label bb%d out of range" ctx l :: errs
  else errs

let check_site f errs ctx (s : site) =
  if s.site_id < 0 then err f.fname "%s: negative site id" ctx :: errs
  else if s.site_origin < 0 then err f.fname "%s: negative site origin" ctx :: errs
  else errs

let check_inst f errs l i =
  let ctx = Printf.sprintf "bb%d" l in
  match i with
  | Assign (r, e) ->
    let errs = check_expr f errs ctx e in
    if r < 0 || r >= f.nregs then err f.fname "%s: destination r%d out of range" ctx r :: errs
    else errs
  | Store (a, v) -> check_operand f (check_operand f errs ctx a) ctx v
  | Observe v -> check_operand f errs ctx v
  | Call { dst; args; site; _ } ->
    let errs = check_site f errs ctx site in
    let errs = List.fold_left (fun e a -> check_operand f e ctx a) errs args in
    (match dst with
    | Some r when r < 0 || r >= f.nregs ->
      err f.fname "%s: call destination r%d out of range" ctx r :: errs
    | Some _ | None -> errs)
  | Icall { dst; fptr; args; site } ->
    let errs = check_site f errs ctx site in
    let errs = check_operand f errs ctx fptr in
    let errs = List.fold_left (fun e a -> check_operand f e ctx a) errs args in
    (match dst with
    | Some r when r < 0 || r >= f.nregs ->
      err f.fname "%s: icall destination r%d out of range" ctx r :: errs
    | Some _ | None -> errs)
  | Asm_icall { fptr; site } ->
    check_operand f (check_site f errs ctx site) ctx fptr

let check_term f errs l t =
  let ctx = Printf.sprintf "bb%d terminator" l in
  match t with
  | Jmp l1 -> check_label f errs ctx l1
  | Br (c, l1, l2) ->
    let errs = check_operand f errs ctx c in
    check_label f (check_label f errs ctx l1) ctx l2
  | Switch { scrutinee; cases; default; _ } ->
    let errs = check_operand f errs ctx scrutinee in
    let errs = check_label f errs ctx default in
    Array.fold_left (fun e (_, l1) -> check_label f e ctx l1) errs cases
  | Ret None -> errs
  | Ret (Some v) -> check_operand f errs ctx v

let check_func f =
  let errs = ref [] in
  if f.entry <> 0 then errs := err f.fname "entry must be bb0" :: !errs;
  if f.params < 0 || f.params > f.nregs then
    errs := err f.fname "params (%d) exceed register file (%d)" f.params f.nregs :: !errs;
  if Array.length f.blocks = 0 then errs := err f.fname "no blocks" :: !errs;
  Array.iteri
    (fun l b ->
      Array.iter (fun i -> errs := check_inst f !errs l i) b.insts;
      errs := check_term f !errs l b.term)
    f.blocks;
  List.rev !errs

let check_program p =
  let errs = ref [] in
  Program.iter_funcs p (fun f -> errs := List.rev_append (check_func f) !errs);
  (* Callee existence. *)
  Program.iter_funcs p (fun f ->
      List.iter
        (fun (_, callee) ->
          if not (Program.mem p callee) then
            errs := err f.fname "direct call to unknown @%s" callee :: !errs)
        (Func.call_sites f));
  Array.iter
    (fun name ->
      if not (Program.mem p name) then
        errs := err "" "fptr table references unknown @%s" name :: !errs)
    p.Program.fptr_table;
  (* Site uniqueness and bounds. *)
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun (fname, s) ->
      if s.site_id >= p.Program.next_site then
        errs := err fname "site %d >= next_site %d" s.site_id p.Program.next_site :: !errs;
      (match Hashtbl.find_opt seen s.site_id with
      | Some other ->
        errs := err fname "site %d duplicated (also in %s)" s.site_id other :: !errs
      | None -> ());
      Hashtbl.replace seen s.site_id fname)
    (Program.all_sites p);
  List.rev !errs

let check_exn p =
  match check_program p with
  | [] -> ()
  | errors ->
    let shown = List.filteri (fun i _ -> i < 10) errors in
    let text =
      String.concat "; "
        (List.map (fun e -> Printf.sprintf "%s: %s" e.where e.what) shown)
    in
    invalid_arg
      (Printf.sprintf "Validate.check_exn: %d error(s): %s" (List.length errors) text)
