open Types

let block f l =
  if l < 0 || l >= Array.length f.blocks then
    invalid_arg (Printf.sprintf "Func.block: label %d out of range in %s" l f.fname)
  else f.blocks.(l)

let iter_insts f g =
  Array.iteri (fun l b -> Array.iter (fun i -> g l i) b.insts) f.blocks

let iter_terms f g = Array.iteri (fun l b -> g l b.term) f.blocks

let fold_insts f ~init ~f:g =
  let acc = ref init in
  iter_insts f (fun _ i -> acc := g !acc i);
  !acc

let map_blocks f ~f:g = { f with blocks = Array.mapi g f.blocks }

let call_sites f =
  List.rev
    (fold_insts f ~init:[] ~f:(fun acc i ->
         match i with
         | Call { site; callee; _ } -> (site, callee) :: acc
         | Assign _ | Store _ | Observe _ | Icall _ | Asm_icall _ -> acc))

let icall_sites f =
  List.rev
    (fold_insts f ~init:[] ~f:(fun acc i ->
         match i with
         | Icall { site; _ } -> site :: acc
         | Assign _ | Store _ | Observe _ | Call _ | Asm_icall _ -> acc))

let asm_icall_sites f =
  List.rev
    (fold_insts f ~init:[] ~f:(fun acc i ->
         match i with
         | Asm_icall { site; _ } -> site :: acc
         | Assign _ | Store _ | Observe _ | Call _ | Icall _ -> acc))

let ret_count f =
  Array.fold_left
    (fun acc b -> match b.term with Ret _ -> acc + 1 | Jmp _ | Br _ | Switch _ -> acc)
    0 f.blocks

let jump_table_count f =
  Array.fold_left
    (fun acc b ->
      match b.term with
      | Switch { lowering = Jump_table; _ } -> acc + 1
      | Switch { lowering = Branch_ladder; _ } | Ret _ | Jmp _ | Br _ -> acc)
    0 f.blocks

let inst_count f =
  Array.fold_left (fun acc b -> acc + Array.length b.insts + 1) 0 f.blocks

let successors = function
  | Jmp l -> [ l ]
  | Br (_, l1, l2) -> [ l1; l2 ]
  | Switch { cases; default; _ } -> default :: Array.to_list (Array.map snd cases)
  | Ret _ -> []

let reachable_labels f =
  let n = Array.length f.blocks in
  let seen = Array.make n false in
  let rec go l =
    if l >= 0 && l < n && not seen.(l) then begin
      seen.(l) <- true;
      List.iter go (successors f.blocks.(l).term)
    end
  in
  go f.entry;
  seen

let max_site_id f =
  fold_insts f ~init:(-1) ~f:(fun acc i ->
      match i with
      | Call { site; _ } | Icall { site; _ } | Asm_icall { site; _ } ->
        max acc site.site_id
      | Assign _ | Store _ | Observe _ -> acc)

let rename_sites f ~fresh =
  let rename_inst i =
    match i with
    | Call c -> Call { c with site = fresh c.site }
    | Icall c -> Icall { c with site = fresh c.site }
    | Asm_icall c -> Asm_icall { c with site = fresh c.site }
    | Assign _ | Store _ | Observe _ -> i
  in
  map_blocks f ~f:(fun _ b -> { b with insts = Array.map rename_inst b.insts })
