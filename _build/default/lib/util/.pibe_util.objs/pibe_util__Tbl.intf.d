lib/util/tbl.mli:
