lib/util/stats.mli:
