lib/util/stats.ml: Array List
