lib/util/rng.mli:
