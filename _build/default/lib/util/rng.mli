(** Deterministic pseudo-random number generation.

    Every stochastic choice in the reproduction (kernel generation, workload
    target selection, timing jitter) flows through a seeded [Rng.t] so that
    experiments are pure functions of their seed.  The generator is
    splitmix64, which is small, fast and statistically adequate for workload
    synthesis. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]; the two
    streams are decorrelated.  Used to give each kernel subsystem or
    workload its own stream so adding draws in one place does not perturb
    the others. *)

val int64 : t -> int64
(** Next raw 64-bit draw. *)

val int : t -> int -> int
(** [int t bound] draws uniformly in [\[0, bound)].  [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] draws uniformly in [\[0, bound)]. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val weighted : t -> (int * 'a) array -> 'a
(** [weighted t arr] draws ['a] with probability proportional to the [int]
    weights (all non-negative, at least one positive). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] draws the number of failures before the first success
    of a Bernoulli(p) sequence; heavy-tailed counts for workload fan-out. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws in [\[0, n)] with Zipfian weight [1/(k+1)^s]; used
    to give indirect-call sites the skewed target popularity the paper
    reports (Table 4). *)
