type cell =
  | Str of string
  | Int of int
  | Float of float
  | Pct of float
  | Empty

type line =
  | Row of cell list
  | Separator

type t = {
  tbl_title : string;
  tbl_columns : string list;
  mutable tbl_lines : line list; (* reverse order *)
}

let create ~title ~columns = { tbl_title = title; tbl_columns = columns; tbl_lines = [] }

let pad_row ncols cells =
  let n = List.length cells in
  if n >= ncols then List.filteri (fun i _ -> i < ncols) cells
  else cells @ List.init (ncols - n) (fun _ -> Empty)

let add_row t cells =
  let cells = pad_row (List.length t.tbl_columns) cells in
  t.tbl_lines <- Row cells :: t.tbl_lines

let add_separator t = t.tbl_lines <- Separator :: t.tbl_lines
let title t = t.tbl_title
let columns t = t.tbl_columns

let rows t =
  List.rev
    (List.filter_map (function Row r -> Some r | Separator -> None) t.tbl_lines)

let cell_text = function
  | Str s -> s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.2f" f
  | Pct p -> if p >= 0.0 then Printf.sprintf "+%.1f%%" p else Printf.sprintf "%.1f%%" p
  | Empty -> ""

let find_row t label =
  List.find_opt
    (function [] -> false | first :: _ -> String.equal (cell_text first) label)
    (rows t)

let to_string t =
  let lines = List.rev t.tbl_lines in
  let ncols = List.length t.tbl_columns in
  let widths = Array.of_list (List.map String.length t.tbl_columns) in
  List.iter
    (function
      | Separator -> ()
      | Row cells ->
        List.iteri
          (fun i c ->
            if i < ncols then widths.(i) <- max widths.(i) (String.length (cell_text c)))
          cells)
    lines;
  let buf = Buffer.create 1024 in
  let pad i s =
    let w = widths.(i) in
    let missing = w - String.length s in
    (* left-align first column, right-align the rest *)
    if i = 0 then s ^ String.make (max 0 missing) ' '
    else String.make (max 0 missing) ' ' ^ s
  in
  let total_width = Array.fold_left ( + ) 0 widths + (3 * (ncols - 1)) in
  let rule = String.make (max total_width (String.length t.tbl_title)) '-' in
  Buffer.add_string buf t.tbl_title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iteri
    (fun i col ->
      if i > 0 then Buffer.add_string buf " | ";
      Buffer.add_string buf (pad i col))
    t.tbl_columns;
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Separator ->
        Buffer.add_string buf rule;
        Buffer.add_char buf '\n'
      | Row cells ->
        List.iteri
          (fun i c ->
            if i < ncols then begin
              if i > 0 then Buffer.add_string buf " | ";
              Buffer.add_string buf (pad i (cell_text c))
            end)
          cells;
        Buffer.add_char buf '\n')
    lines;
  Buffer.contents buf

let print t =
  print_string (to_string t);
  print_newline ()
