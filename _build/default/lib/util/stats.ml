let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | xs -> xs

let mean xs =
  let xs = require_nonempty "Stats.mean" xs in
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let median xs =
  let xs = require_nonempty "Stats.median" xs in
  let arr = Array.of_list xs in
  Array.sort compare arr;
  let n = Array.length arr in
  if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let n = float_of_int (List.length xs) in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. (n -. 1.0))

let geomean xs =
  let xs = require_nonempty "Stats.geomean" xs in
  let logsum =
    List.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive element"
        else acc +. log x)
      0.0 xs
  in
  exp (logsum /. float_of_int (List.length xs))

let geomean_overhead pcts =
  let ratios = List.map (fun p -> 1.0 +. (p /. 100.0)) pcts in
  (geomean ratios -. 1.0) *. 100.0

let percentile p xs =
  let xs = require_nonempty "Stats.percentile" xs in
  let arr = Array.of_list xs in
  Array.sort compare arr;
  let n = Array.length arr in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  arr.(idx)

let overhead_pct ~baseline v = (v -. baseline) /. baseline *. 100.0
let throughput_delta_pct ~baseline v = (v -. baseline) /. baseline *. 100.0
let sum_int = List.fold_left ( + ) 0

let ratio_pct ~num ~den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den
