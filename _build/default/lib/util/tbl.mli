(** Aligned plain-text table rendering for experiment reports.

    Every reproduced paper table is materialized as a [Tbl.t] so that tests
    can inspect cells programmatically while the bench harness prints the
    same rows the paper reports. *)

type cell =
  | Str of string
  | Int of int
  | Float of float  (** rendered with 2 decimals *)
  | Pct of float  (** rendered as [+x.x%] / [-x.x%] *)
  | Empty

type t

val create : title:string -> columns:string list -> t
(** A titled table with a fixed header row. *)

val add_row : t -> cell list -> unit
(** Appends a row; the row is padded or truncated to the column count. *)

val add_separator : t -> unit
(** Appends a horizontal rule (useful before summary rows). *)

val title : t -> string
val columns : t -> string list

val rows : t -> cell list list
(** All data rows in insertion order (separators excluded). *)

val cell_text : cell -> string
(** Rendering of a single cell, exactly as printed. *)

val find_row : t -> string -> cell list option
(** [find_row t label] returns the first row whose first cell renders as
    [label]. *)

val to_string : t -> string
(** Full rendering: title, header, rule, rows. *)

val print : t -> unit
(** [to_string] to stdout, followed by a blank line. *)
