type t = {
  mask : int;
  counters : Bytes.t;  (* 0-3: strongly/weakly not-taken, weakly/strongly taken *)
}

let create ?(entries = 4096) () =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Pht.create: entries must be a positive power of two";
  { mask = entries - 1; counters = Bytes.make entries '\001' }

let slot t key = key land t.mask

let predict t ~key = Bytes.get_uint8 t.counters (slot t key) >= 2

let train t ~key ~taken =
  let i = slot t key in
  let c = Bytes.get_uint8 t.counters i in
  let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
  Bytes.set_uint8 t.counters i c'

let flush t = Bytes.fill t.counters 0 (Bytes.length t.counters) '\001'
