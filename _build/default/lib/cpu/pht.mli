(** Pattern History Table: 2-bit saturating counters predicting
    conditional-branch direction (the predictor Spectre V1 poisons,
    paper §2.2/§6.1).

    The engine charges a misprediction penalty when the predicted
    direction disagrees with the resolved one.  PIBE's threat model
    excludes V1 (static analysis handles it, §3), so there is no V1
    drill — the PHT exists for timing fidelity: cold/alternating branches
    cost more than well-trained ones. *)

type t

val create : ?entries:int -> unit -> t
(** [entries] defaults to 4096, must be a power of two.  Counters start
    weakly not-taken. *)

val predict : t -> key:int -> bool
(** Predicted direction for the branch identified by [key]. *)

val train : t -> key:int -> taken:bool -> unit
(** Saturating update with the resolved direction. *)

val flush : t -> unit
