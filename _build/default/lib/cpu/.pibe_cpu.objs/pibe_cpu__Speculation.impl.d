lib/cpu/speculation.ml: Hashtbl List
