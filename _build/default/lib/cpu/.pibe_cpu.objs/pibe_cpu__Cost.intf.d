lib/cpu/cost.mli: Pibe_ir
