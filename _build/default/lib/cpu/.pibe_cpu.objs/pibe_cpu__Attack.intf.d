lib/cpu/attack.mli: Engine Speculation
