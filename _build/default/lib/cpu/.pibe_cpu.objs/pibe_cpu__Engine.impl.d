lib/cpu/engine.ml: Array Btb Cost Float Func Hashtbl Icache Layout List Option Pht Pibe_ir Printf Program Protection Rsb Speculation String Types
