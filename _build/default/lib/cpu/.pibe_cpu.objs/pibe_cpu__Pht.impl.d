lib/cpu/pht.ml: Bytes
