lib/cpu/icache.ml: Cost Hashtbl
