lib/cpu/icache.mli:
