lib/cpu/attack.ml: Array Btb Engine List Pibe_ir Speculation String
