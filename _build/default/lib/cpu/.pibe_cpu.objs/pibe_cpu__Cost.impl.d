lib/cpu/cost.ml: Pibe_ir Protection
