lib/cpu/speculation.mli:
