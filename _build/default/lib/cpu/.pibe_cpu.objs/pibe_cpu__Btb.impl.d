lib/cpu/btb.ml: Array
