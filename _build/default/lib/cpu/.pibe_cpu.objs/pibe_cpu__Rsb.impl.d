lib/cpu/rsb.ml: Array
