lib/cpu/btb.mli:
