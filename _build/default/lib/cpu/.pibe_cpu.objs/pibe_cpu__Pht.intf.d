lib/cpu/pht.mli:
