lib/cpu/engine.mli: Btb Icache Pht Pibe_ir Program Protection Rsb Speculation Types
