lib/cpu/rsb.mli:
