type entry = {
  mutable valid : bool;
  mutable target : string;
}

type t = {
  mask : int;
  slots : entry array;
}

let create ?(entries = 1024) () =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Btb.create: entries must be a positive power of two";
  { mask = entries - 1; slots = Array.init entries (fun _ -> { valid = false; target = "" }) }

let slot t site = t.slots.(site land t.mask)

(* No tag: every site aliasing to the slot shares the prediction, which is
   exactly the sharing Spectre V2 abuses. *)
let predict t ~site =
  let e = slot t site in
  if e.valid then Some e.target else None

let train t ~site ~target =
  let e = slot t site in
  e.valid <- true;
  e.target <- target

let flush t =
  Array.iter
    (fun e ->
      e.valid <- false;
      e.target <- "")
    t.slots

let aliases t a b = a land t.mask = b land t.mask
