(** Transient control-flow hijacking drills (paper §2.2, §6, §8.6).

    Each drill poisons one predictor, runs the victim entry point, and
    reports whether the attacker-chosen gadget was transiently entered.
    The engine must have been created with [speculation = Some _]. *)

type outcome = {
  gadget_reached : bool;  (** the planted gadget was transiently entered *)
  transient_entries : Speculation.event list;
      (** every attacker-visible transient entry observed during the run *)
}

val spectre_v2 :
  Engine.t -> victim_site:int -> gadget:string -> entry:string -> args:int list -> outcome
(** Trains the BTB slot of [victim_site] towards [gadget] (as an aliasing
    attacker thread would), then runs [entry args]. *)

val ret2spec :
  Engine.t ->
  scenario:Speculation.rsb_scenario ->
  gadget:string ->
  entry:string ->
  args:int list ->
  outcome
(** Arms an RSB desynchronization towards [gadget] before the run.
    [User_pollution] is defeated by entry-point RSB refilling;
    [Cross_thread] is not (paper §6.4). *)

val lvi :
  Engine.t -> poisoned_addr:int -> injected_fptr:int -> entry:string -> args:int list -> outcome
(** Marks loads from [poisoned_addr] (an ops-table cell) as
    attacker-injectable with value [injected_fptr], then runs the
    victim. *)

val run_all :
  Engine.t ->
  victim_site:int ->
  poisoned_addr:int ->
  gadget_fptr:int ->
  gadget:string ->
  entry:string ->
  args:int list ->
  (string * outcome) list
(** The three drills back to back; returns (mechanism name, outcome). *)
