type t = {
  capacity : int;
  table : (string, int) Hashtbl.t;  (* name -> last-use stamp *)
  sizes : (string, int) Hashtbl.t;
  mutable used : int;
  mutable clock : int;
  mutable misses : int;
  mutable hits : int;
}

let create ~capacity_bytes =
  {
    capacity = capacity_bytes;
    table = Hashtbl.create 256;
    sizes = Hashtbl.create 256;
    used = 0;
    clock = 0;
    misses = 0;
    hits = 0;
  }

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun name stamp ->
      match !victim with
      | Some (_, s) when s <= stamp -> ()
      | _ -> victim := Some (name, stamp))
    t.table;
  match !victim with
  | None -> ()
  | Some (name, _) ->
    t.used <- t.used - Hashtbl.find t.sizes name;
    Hashtbl.remove t.table name;
    Hashtbl.remove t.sizes name

let touch t ~name ~size =
  if t.capacity <= 0 then 0
  else begin
    t.clock <- t.clock + 1;
    if Hashtbl.mem t.table name then begin
      Hashtbl.replace t.table name t.clock;
      t.hits <- t.hits + 1;
      0
    end
    else begin
      t.misses <- t.misses + 1;
      (* One invocation touches the lines on its own path, not the whole
         body: a large (inlined) function occupies at most 8 KiB of the
         cache, and the demand-fetched head that stalls the front-end is
         at most 1 KiB. *)
      let footprint = min (min size 8192) t.capacity in
      while t.used + footprint > t.capacity && Hashtbl.length t.table > 0 do
        evict_lru t
      done;
      Hashtbl.replace t.table name t.clock;
      Hashtbl.replace t.sizes name footprint;
      t.used <- t.used + footprint;
      let fetched = min footprint 1024 in
      Cost.icache_miss_base + (fetched / Cost.icache_line_bytes * Cost.icache_miss_per_line)
    end
  end

let resident t name = Hashtbl.mem t.table name

let flush t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.sizes;
  t.used <- 0

let miss_count t = t.misses
let hit_count t = t.hits
