open Pibe_ir
open Types

type edge_kind =
  | Edge_direct
  | Edge_indirect
  | Edge_asm

type edge_event = {
  site : site;
  caller : string;
  callee : string;
  kind : edge_kind;
}

type config = {
  fwd_protection : site -> Protection.forward;
  bwd_protection : string -> Protection.backward;
  fwd_override : (site:site -> target:string -> int) option;
  icache_bytes : int;
  footprint : func -> int;
  record_trace : bool;
  on_edge : (edge_event -> unit) option;
  on_exit : (string -> unit) option;
  speculation : Speculation.t option;
  fuel : int;
  extra_call_cycles : int;
  extra_icall_cycles : int;
  extra_ret_cycles : int;
  rsb_refill : bool;
}

let default_config =
  {
    fwd_protection = (fun _ -> Protection.F_none);
    bwd_protection = (fun _ -> Protection.B_none);
    fwd_override = None;
    icache_bytes = 32 * 1024;
    footprint = Layout.func_size;
    record_trace = false;
    on_edge = None;
    on_exit = None;
    speculation = None;
    fuel = 100_000_000;
    extra_call_cycles = 0;
    extra_icall_cycles = 0;
    extra_ret_cycles = 0;
    rsb_refill = false;
  }

type counters = {
  mutable calls : int;
  mutable icalls : int;
  mutable rets : int;
  mutable insts : int;
  mutable btb_misses : int;
  mutable rsb_misses : int;
  mutable pht_misses : int;
  mutable stack_bytes : int;
  mutable peak_stack_bytes : int;
}

type t = {
  prog : Program.t;
  funcs : (string, func) Hashtbl.t;
  fptr_table : string array;
  mem : int array;
  tbtb : Btb.t;
  trsb : Rsb.t;
  tpht : Pht.t;
  ticache : Icache.t;
  branch_keys : (string, int) Hashtbl.t;  (* function -> PHT key base *)
  footprints : (string, int) Hashtbl.t;  (* memoized config.footprint *)
  cfg : config;
  ctrs : counters;
  mutable cyc : int;
  mutable steps : int;
  mutable trace_rev : int list;
}

exception Runtime_error of string
exception Out_of_fuel

let create ?(config = default_config) prog =
  let funcs = Hashtbl.create 1024 in
  Program.iter_funcs prog (fun f -> Hashtbl.replace funcs f.fname f);
  {
    prog;
    funcs;
    fptr_table = prog.Program.fptr_table;
    mem = Program.initial_memory prog;
    tbtb = Btb.create ();
    trsb = Rsb.create ();
    tpht = Pht.create ();
    ticache = Icache.create ~capacity_bytes:config.icache_bytes;
    branch_keys = Hashtbl.create 1024;
    footprints = Hashtbl.create 1024;
    cfg = config;
    ctrs =
      {
        calls = 0;
        icalls = 0;
        rets = 0;
        insts = 0;
        btb_misses = 0;
        rsb_misses = 0;
        pht_misses = 0;
        stack_bytes = 0;
        peak_stack_bytes = 0;
      };
    cyc = 0;
    steps = 0;
    trace_rev = [];
  }

let footprint_of t f =
  match Hashtbl.find_opt t.footprints f.fname with
  | Some s -> s
  | None ->
    let s = t.cfg.footprint f in
    Hashtbl.replace t.footprints f.fname s;
    s

let branch_key_base t name =
  match Hashtbl.find_opt t.branch_keys name with
  | Some k -> k
  | None ->
    let k = Hashtbl.hash name * 613 in
    Hashtbl.replace t.branch_keys name k;
    k

let lookup_func t name =
  match Hashtbl.find_opt t.funcs name with
  | Some f -> f
  | None -> raise (Runtime_error ("call to unknown function @" ^ name))

let operand_value regs = function
  | Imm i -> i
  | Reg r -> regs.(r)

(* Taint: the attacker-injectable transient value of each register, used
   only when a speculation drill is active. *)
let operand_taint taint = function
  | Imm _ -> None
  | Reg r -> taint.(r)

let resolve_fptr t v =
  if v < 0 || v >= Array.length t.fptr_table then
    raise
      (Runtime_error
         (Printf.sprintf "wild indirect call: fptr value %d outside table of %d" v
            (Array.length t.fptr_table)))
  else t.fptr_table.(v)

let emit_edge t site caller callee kind =
  match t.cfg.on_edge with
  | None -> ()
  | Some f -> f { site; caller; callee; kind }

let charge t c = t.cyc <- t.cyc + c

let enter_code t callee =
  charge t (Icache.touch t.ticache ~name:callee.fname ~size:(footprint_of t callee))

(* Forward transfer through an indirect call site: prediction, cost,
   training, speculation drill.  Returns unit; the caller then executes
   the resolved target. *)
let indirect_transfer t ~site ~target ~fptr_taint ~protection =
  let spec = t.cfg.speculation in
  (match protection with
  | Protection.F_none ->
    let predicted = Btb.predict t.tbtb ~site:site.site_id in
    let hit = match predicted with Some p -> String.equal p target | None -> false in
    if not hit then t.ctrs.btb_misses <- t.ctrs.btb_misses + 1;
    charge t (Cost.forward_cost protection ~btb_hit:hit);
    (* The resolved branch retrains its slot. *)
    Btb.train t.tbtb ~site:site.site_id ~target;
    (match (spec, predicted) with
    | Some s, Some p when not (String.equal p target) ->
      Speculation.record s
        { Speculation.mechanism = Speculation.Spectre_v2; site_id = site.site_id; gadget = p }
    | _ -> ())
  | Protection.F_retpoline | Protection.F_lvi | Protection.F_fenced_retpoline ->
    charge t (Cost.forward_cost protection ~btb_hit:false);
    (* Retpolines never execute a BTB-predicted branch; the LVI thunk
       still does, so V2 injection remains possible through it. *)
    if not (Protection.forward_stops_btb_injection protection) then begin
      let predicted = Btb.predict t.tbtb ~site:site.site_id in
      Btb.train t.tbtb ~site:site.site_id ~target;
      match (spec, predicted) with
      | Some s, Some p when not (String.equal p target) ->
        Speculation.record s
          {
            Speculation.mechanism = Speculation.Spectre_v2;
            site_id = site.site_id;
            gadget = p;
          }
      | _ -> ()
    end);
  (* LVI: a poisoned branch-target load lets the attacker steer the
     transient call unless the sequence fences the load. *)
  match (spec, fptr_taint) with
  | Some s, Some injected when not (Protection.forward_stops_lvi protection) ->
    let gadget =
      if injected >= 0 && injected < Array.length t.fptr_table then t.fptr_table.(injected)
      else "#fault"
    in
    Speculation.record s
      { Speculation.mechanism = Speculation.Lvi; site_id = site.site_id; gadget }
  | _ -> ()

let rec exec_func t (f : func) (args : int list) ~(ret_to : string) : int option =
  (* Frame accounting with a stack-coloring model: inlined callees'
     locals have disjoint lifetimes, so the allocator merges most of
     their slots.  Sub-linear growth in the register count approximates
     that; coloring degrades as merged frames grow, which is exactly the
     inefficiency paper Rule 2 exists to bound (section 5.2). *)
  let frame_bytes = 16 + (8 * int_of_float (Float.of_int f.nregs ** 0.6)) in
  t.ctrs.stack_bytes <- t.ctrs.stack_bytes + frame_bytes;
  if t.ctrs.stack_bytes > t.ctrs.peak_stack_bytes then
    t.ctrs.peak_stack_bytes <- t.ctrs.stack_bytes;
  let regs = Array.make (max f.nregs 1) 0 in
  List.iteri (fun i v -> if i < f.params then regs.(i) <- v) args;
  let spec_on = t.cfg.speculation <> None in
  let taint = if spec_on then Array.make (max f.nregs 1) None else [||] in
  let eval_expr e =
    match e with
    | Const i -> i
    | Move o -> operand_value regs o
    | Binop (op, a, b) -> eval_binop op (operand_value regs a) (operand_value regs b)
    | Load a ->
      let addr = operand_value regs a in
      if addr < 0 || addr >= Array.length t.mem then
        raise (Runtime_error (Printf.sprintf "load out of bounds: %d in %s" addr f.fname))
      else t.mem.(addr)
  in
  let taint_of_expr e =
    match e with
    | Const _ -> None
    | Move o -> operand_taint taint o
    | Binop _ -> None
    | Load a -> (
      match t.cfg.speculation with
      | None -> None
      | Some s -> Speculation.injected_load s ~addr:(operand_value regs a))
  in
  let do_call ~dst ~callee ~args:actuals ~site =
    t.ctrs.calls <- t.ctrs.calls + 1;
    charge t (Cost.direct_call + t.cfg.extra_call_cycles);
    emit_edge t site f.fname callee Edge_direct;
    let callee_f = lookup_func t callee in
    enter_code t callee_f;
    Rsb.push t.trsb f.fname;
    let result = exec_func t callee_f (List.map (operand_value regs) actuals) ~ret_to:f.fname in
    (match (dst, result) with
    | Some r, Some v -> regs.(r) <- v
    | Some r, None -> regs.(r) <- 0
    | None, _ -> ());
    match dst with
    | Some r when spec_on -> taint.(r) <- None
    | _ -> ()
  in
  let do_icall ~dst ~fptr ~args:actuals ~site ~asm =
    t.ctrs.icalls <- t.ctrs.icalls + 1;
    charge t t.cfg.extra_icall_cycles;
    let v = operand_value regs fptr in
    let target = resolve_fptr t v in
    let fptr_taint = if spec_on then operand_taint taint fptr else None in
    (match t.cfg.fwd_override with
    | Some hook when not asm -> charge t (hook ~site ~target)
    | Some _ | None ->
      let protection = if asm then Protection.F_none else t.cfg.fwd_protection site in
      indirect_transfer t ~site ~target ~fptr_taint ~protection);
    emit_edge t site f.fname target (if asm then Edge_asm else Edge_indirect);
    let callee_f = lookup_func t target in
    enter_code t callee_f;
    Rsb.push t.trsb f.fname;
    let result = exec_func t callee_f (List.map (operand_value regs) actuals) ~ret_to:f.fname in
    (match (dst, result) with
    | Some r, Some v -> regs.(r) <- v
    | Some r, None -> regs.(r) <- 0
    | None, _ -> ());
    match dst with
    | Some r when spec_on -> taint.(r) <- None
    | _ -> ()
  in
  let exec_inst i =
    t.ctrs.insts <- t.ctrs.insts + 1;
    t.steps <- t.steps + 1;
    if t.steps > t.cfg.fuel then raise Out_of_fuel;
    match i with
    | Assign (r, e) ->
      let cost =
        match e with
        | Load _ -> Cost.load
        | Binop _ -> Cost.binop
        | Const _ -> Cost.assign
        | Move _ -> Cost.move
      in
      charge t cost;
      (if spec_on then taint.(r) <- taint_of_expr e);
      regs.(r) <- eval_expr e
    | Store (a, v) ->
      charge t Cost.store;
      let addr = operand_value regs a in
      if addr < 0 || addr >= Array.length t.mem then
        raise (Runtime_error (Printf.sprintf "store out of bounds: %d in %s" addr f.fname))
      else t.mem.(addr) <- operand_value regs v
    | Observe v ->
      charge t Cost.observe;
      if t.cfg.record_trace then t.trace_rev <- operand_value regs v :: t.trace_rev
    | Call { dst; callee; args; site; tail = _ } -> do_call ~dst ~callee ~args ~site
    | Icall { dst; fptr; args; site } -> do_icall ~dst ~fptr ~args ~site ~asm:false
    | Asm_icall { fptr; site } -> do_icall ~dst:None ~fptr ~args:[] ~site ~asm:true
  in
  let do_ret v =
    t.ctrs.rets <- t.ctrs.rets + 1;
    charge t t.cfg.extra_ret_cycles;
    let protection = t.cfg.bwd_protection f.fname in
    (match protection with
    | Protection.B_none | Protection.B_lvi ->
      let popped = Rsb.pop t.trsb in
      let hit = match popped with Some p -> String.equal p ret_to | None -> false in
      if not hit then t.ctrs.rsb_misses <- t.ctrs.rsb_misses + 1;
      charge t (Cost.backward_cost protection ~rsb_hit:hit);
      (match t.cfg.speculation with
      | Some s when not (Protection.backward_stops_rsb_poisoning protection) -> (
        (* An armed desynchronization means this return's prediction is
           attacker-controlled. *)
        (match Speculation.take_rsb_desync s with
        | Some gadget ->
          Speculation.record s
            { Speculation.mechanism = Speculation.Ret2spec; site_id = -1; gadget }
        | None -> ());
        match popped with
        | Some p when not (String.equal p ret_to) ->
          Speculation.record s
            { Speculation.mechanism = Speculation.Ret2spec; site_id = -1; gadget = p }
        | Some _ | None -> ())
      | _ -> ())
    | Protection.B_ret_retpoline | Protection.B_fenced_ret_retpoline ->
      (* The sequence forces the top-of-RSB into a known state; the stale
         entry is consumed without being followed. *)
      ignore (Rsb.pop t.trsb);
      charge t (Cost.backward_cost protection ~rsb_hit:false));
    t.ctrs.stack_bytes <- t.ctrs.stack_bytes - frame_bytes;
    (match t.cfg.on_exit with
    | Some h -> h f.fname
    | None -> ());
    v
  in
  let rec run_block label =
    let b = Func.block f label in
    Array.iter exec_inst b.insts;
    t.steps <- t.steps + 1;
    if t.steps > t.cfg.fuel then raise Out_of_fuel;
    match b.term with
    | Jmp l ->
      charge t Cost.jmp;
      run_block l
    | Br (c, l1, l2) ->
      charge t Cost.br;
      let taken = operand_value regs c <> 0 in
      let key = branch_key_base t f.fname + label in
      if Pht.predict t.tpht ~key <> taken then begin
        t.ctrs.pht_misses <- t.ctrs.pht_misses + 1;
        charge t Cost.br_mispredict_penalty
      end;
      Pht.train t.tpht ~key ~taken;
      run_block (if taken then l1 else l2)
    | Switch { scrutinee; cases; default; lowering } ->
      let v = operand_value regs scrutinee in
      let rec find i =
        if i >= Array.length cases then (default, Array.length cases)
        else
          let case_v, l = cases.(i) in
          if case_v = v then (l, i + 1) else find (i + 1)
      in
      let target, _position = find 0 in
      (match lowering with
      | Jump_table -> charge t Cost.switch_jump_table
      | Branch_ladder ->
        (* compilers lower large switches as balanced compare trees *)
        let n = Array.length cases in
        let depth =
          let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v / 2) in
          1 + log2 0 (n + 1)
        in
        charge t (Cost.br + (Cost.switch_ladder_step * depth)));
      run_block target
    | Ret v -> do_ret (Option.map (operand_value regs) v)
  in
  run_block f.entry

let call t name args =
  let f = lookup_func t name in
  if t.cfg.rsb_refill then begin
    (* stuffing: 16 dummy pushes at the entry point *)
    charge t 12;
    Rsb.flush t.trsb;
    (match t.cfg.speculation with
    | Some s -> Speculation.clear_user_rsb_desync s
    | None -> ())
  end;
  enter_code t f;
  Rsb.push t.trsb "#top";
  exec_func t f args ~ret_to:"#top"

let speculation t = t.cfg.speculation

let cycles t = t.cyc
let reset_cycles t = t.cyc <- 0
let counters t = t.ctrs
let trace t = List.rev t.trace_rev
let clear_trace t = t.trace_rev <- []
let memory t = t.mem
let btb t = t.tbtb
let rsb t = t.trsb
let pht t = t.tpht
let icache t = t.ticache
let program t = t.prog
