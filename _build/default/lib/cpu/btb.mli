(** Branch Target Buffer model.

    A direct-mapped, untagged buffer indexed by the low bits of the
    branch-site id (standing in for the branch address): distinct sites
    that alias to one slot share its prediction — the property Spectre V2
    exploits. *)

type t

val create : ?entries:int -> unit -> t
(** [entries] defaults to 1024 and must be a power of two. *)

val predict : t -> site:int -> string option
(** Prediction for the branch at [site]; [None] on a cold slot. *)

val train : t -> site:int -> target:string -> unit
(** Records the resolved target (also how an attacker poisons aliased
    entries). *)

val flush : t -> unit

val aliases : t -> int -> int -> bool
(** Do two site ids map to the same entry? *)
