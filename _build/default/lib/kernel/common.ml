type t = {
  security_check : string;
  fdget : string;
  fput : string;
  get_user : string;
  put_user : string;
  kmalloc : string;
  kfree : string;
  memcpy_small : string;
  copy_user_big : string;
  mutex_lock : string;
  mutex_unlock : string;
  audit_hook : string;
  get_current : string;
}

let build ctx =
  let sub = "core" in
  let mm = ctx.Ctx.mm in
  let leaf name compute = Gen_util.leaf ctx ~name ~params:2 ~compute ~subsystem:sub in
  (* LSM: four security modules registered in a hook table; every
     security_check dispatches through it (as Linux's LSM layer does). *)
  List.iteri
    (fun i name ->
      let handler =
        Gen_util.leaf ctx ~name:(name ^ "_hook") ~params:2 ~compute:4 ~subsystem:"lsm"
      in
      let idx = Ctx.register_fptr ctx handler in
      Ctx.init_global ctx ~addr:(mm.Memmap.lsm_hooks + i) ~value:idx)
    [ "selinux"; "apparmor"; "lockdown"; "bpf_lsm" ];
  let security_check =
    let b = Pibe_ir.Builder.create ~name:"security_check" ~params:2 in
    let a0 = Pibe_ir.Builder.param b 0 and a1 = Pibe_ir.Builder.param b 1 in
    let v = Gen_util.compute ctx b ~seeds:[ a0; a1 ] ~n:4 in
    let masked = Pibe_ir.Builder.reg b in
    Pibe_ir.Builder.assign b masked
      (Pibe_ir.Types.Binop (Pibe_ir.Types.And, Pibe_ir.Types.Reg v, Pibe_ir.Types.Imm 3));
    let slot = Pibe_ir.Builder.reg b in
    Pibe_ir.Builder.assign b slot
      (Pibe_ir.Types.Binop
         (Pibe_ir.Types.Add, Pibe_ir.Types.Reg masked, Pibe_ir.Types.Imm mm.Memmap.lsm_hooks));
    let r =
      Gen_util.icall_mem ctx b ~table_addr:slot
        ~args:[ Pibe_ir.Types.Reg a0; Pibe_ir.Types.Reg a1 ]
    in
    Pibe_ir.Builder.ret b (Some (Pibe_ir.Types.Reg r));
    Ctx.add ctx
      (Pibe_ir.Builder.finish b
         ~attrs:{ Pibe_ir.Types.default_attrs with subsystem = sub }
         ());
    "security_check"
  in
  let fdget = leaf "fdget" 5 in
  let fput = leaf "fput" 4 in
  let get_user = leaf "get_user" 4 in
  let put_user = leaf "put_user" 4 in
  (* The lock-acquire slow path is hand-written assembly in Linux: never
     inlined by the optimizer ("other" blocked weight in paper Table 9). *)
  let mutex_lock = leaf "mutex_lock" 4 in
  let mutex_unlock = leaf "mutex_unlock" 3 in
  (let f = Pibe_ir.Program.find ctx.Ctx.prog mutex_lock in
   ctx.Ctx.prog <-
     Pibe_ir.Program.update_func ctx.Ctx.prog
       { f with Pibe_ir.Types.attrs = { f.Pibe_ir.Types.attrs with noinline = true } });
  let audit_hook = leaf "audit_hook" 3 in
  let get_current = leaf "get_current" 3 in
  let memcpy_small = leaf "memcpy_small" 10 in
  (* The bulk uaccess copy: a size-class switch like the real unrolled
     memcpy family.  Its *static* InlineCost is well above 3,000 (Rule 3
     must refuse it on hot paths) while each *dynamic* execution runs just
     one size class. *)
  let copy_user_big =
    let b = Pibe_ir.Builder.create ~name:"copy_user_big" ~params:2 in
    let dst = Pibe_ir.Builder.param b 0 and len = Pibe_ir.Builder.param b 1 in
    let masked = Pibe_ir.Builder.reg b in
    Pibe_ir.Builder.assign b masked
      (Pibe_ir.Types.Binop (Pibe_ir.Types.And, Pibe_ir.Types.Reg len, Pibe_ir.Types.Imm 31));
    let cases = List.init 32 (fun _ -> Pibe_ir.Builder.new_block b) in
    let join = Pibe_ir.Builder.new_block b in
    let out = Pibe_ir.Builder.reg b in
    Pibe_ir.Builder.switch b ~lowering:Pibe_ir.Types.Jump_table (Pibe_ir.Types.Reg masked)
      (List.mapi (fun i l -> (i, l)) cases)
      ~default:join;
    List.iter
      (fun l ->
        Pibe_ir.Builder.switch_to b l;
        let r = Gen_util.compute ctx b ~seeds:[ dst; len ] ~n:20 in
        Pibe_ir.Builder.assign b out (Pibe_ir.Types.Move (Pibe_ir.Types.Reg r));
        Pibe_ir.Builder.jmp b join)
      cases;
    Pibe_ir.Builder.switch_to b join;
    Pibe_ir.Builder.ret b (Some (Pibe_ir.Types.Reg out));
    Ctx.add ctx
      (Pibe_ir.Builder.finish b
         ~attrs:{ Pibe_ir.Types.default_attrs with subsystem = sub }
         ());
    "copy_user_big"
  in
  (* slab allocation is lock-free on the per-cpu fast path *)
  let kmalloc = Gen_util.chain ctx ~name:"kmalloc" ~depth:2 ~compute:7 ~subsystem:sub () in
  let kfree = Gen_util.chain ctx ~name:"kfree" ~depth:1 ~compute:5 ~subsystem:sub () in
  {
    security_check;
    fdget;
    fput;
    get_user;
    put_user;
    kmalloc;
    kfree;
    memcpy_small;
    copy_user_big;
    mutex_lock;
    mutex_unlock;
    audit_hook;
    get_current;
  }
