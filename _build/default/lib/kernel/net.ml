open Pibe_ir
open Types

type t = {
  sock_sendmsg : string;
  sock_recvmsg : string;
  sock_poll : string;
  sock_connect : string;
  sock_accept : string;
  sockfs_read : string;
  sockfs_write : string;
  sockfs_poll : string;
  proto_names : string array;
}

let sub = "net"

let define ctx ~name ~params body =
  let b = Builder.create ~name ~params in
  body b;
  Ctx.add ctx (Builder.finish b ~attrs:{ default_attrs with subsystem = sub } ());
  name

(* Register an implementation function in the fptr table and store its
   index in the proto's ops slot. *)
let register_op ctx ~proto ~op name =
  let idx = Ctx.register_fptr ctx name in
  Ctx.init_global ctx ~addr:(Memmap.sock_op_addr ctx.Ctx.mm ~proto ~op) ~value:idx

let build_proto ctx (common : Common.t) ~proto ~pname ~depth =
  let chain n d extra =
    Gen_util.chain ctx ~name:(pname ^ "_" ^ n) ~depth:d ~compute:9 ~subsystem:sub
      ~extra_callees:extra ()
  in
  let sendmsg_chain =
    chain "do_sendmsg" depth [ common.Common.memcpy_small; common.Common.mutex_lock ]
  in
  let sendmsg =
    define ctx ~name:(pname ^ "_sendmsg") ~params:2 (fun b ->
        let fd = Builder.param b 0 and len = Builder.param b 1 in
        let v = Gen_util.compute ctx b ~seeds:[ fd; len ] ~n:6 in
        (* Large transfers take the slow bulk-copy path; its callee is too
           big for Rule 3. *)
        let masked = Builder.reg b in
        Builder.assign b masked (Binop (And, Reg len, Imm 3));
        let is_zero = Builder.reg b in
        Builder.assign b is_zero (Binop (Eq, Reg masked, Imm 0));
        let big = Builder.new_block b in
        let small = Builder.new_block b in
        let join = Builder.new_block b in
        Builder.br b (Reg is_zero) big small;
        Builder.switch_to b big;
        ignore (Gen_util.call ctx b common.Common.copy_user_big [ Reg v; Reg len ]);
        Builder.jmp b join;
        Builder.switch_to b small;
        ignore (Gen_util.call ctx b common.Common.memcpy_small [ Reg v; Reg len ]);
        Builder.jmp b join;
        Builder.switch_to b join;
        let r = Gen_util.call ctx b sendmsg_chain [ Reg v; Reg len ] in
        Builder.ret b (Some (Reg r)))
  in
  let recvmsg_chain = chain "do_recvmsg" depth [ common.Common.memcpy_small ] in
  let recvmsg =
    define ctx ~name:(pname ^ "_recvmsg") ~params:2 (fun b ->
        let fd = Builder.param b 0 and len = Builder.param b 1 in
        let v = Gen_util.compute ctx b ~seeds:[ fd; len ] ~n:8 in
        let r = Gen_util.call ctx b recvmsg_chain [ Reg v; Reg fd ] in
        Builder.ret b (Some (Reg r)))
  in
  let poll =
    Gen_util.leaf ctx ~name:(pname ^ "_poll") ~params:2 ~compute:4 ~subsystem:sub
  in
  let connect_chain = chain "do_connect" (max 2 depth) [ common.Common.kmalloc ] in
  let connect =
    define ctx ~name:(pname ^ "_connect") ~params:2 (fun b ->
        let fd = Builder.param b 0 and addr = Builder.param b 1 in
        let v = Gen_util.compute ctx b ~seeds:[ fd; addr ] ~n:10 in
        ignore (Gen_util.call ctx b common.Common.security_check [ Reg fd; Reg v ]);
        let r = Gen_util.call ctx b connect_chain [ Reg v; Reg addr ] in
        Builder.ret b (Some (Reg r)))
  in
  let accept = chain "accept" 2 [ common.Common.kmalloc ] in
  let shutdown = chain "shutdown" 1 [] in
  register_op ctx ~proto ~op:Memmap.sop_sendmsg sendmsg;
  register_op ctx ~proto ~op:Memmap.sop_recvmsg recvmsg;
  register_op ctx ~proto ~op:Memmap.sop_poll poll;
  register_op ctx ~proto ~op:Memmap.sop_connect connect;
  register_op ctx ~proto ~op:Memmap.sop_accept accept;
  register_op ctx ~proto ~op:Memmap.sop_shutdown shutdown

(* Netfilter: every tx/rx packet traverses a hook chain through the
   nf_hooks table. *)
let build_netfilter ctx =
  let mm = ctx.Ctx.mm in
  List.iteri
    (fun i name ->
      let handler =
        Gen_util.leaf ctx ~name:(name ^ "_nf") ~params:2 ~compute:4 ~subsystem:sub
      in
      let idx = Ctx.register_fptr ctx handler in
      Ctx.init_global ctx ~addr:(mm.Memmap.nf_hooks + i) ~value:idx)
    [ "conntrack"; "filter"; "nat"; "mangle" ];
  define ctx ~name:"nf_hook_slow" ~params:2 (fun b ->
      let skb = Builder.param b 0 and len = Builder.param b 1 in
      let mix = Builder.reg b in
      Builder.assign b mix (Binop (Shr, Reg len, Imm 2));
      let masked = Builder.reg b in
      Builder.assign b masked (Binop (And, Reg mix, Imm 3));
      let slot = Builder.reg b in
      Builder.assign b slot (Binop (Add, Reg masked, Imm mm.Memmap.nf_hooks));
      let r = Gen_util.icall_mem ctx b ~table_addr:slot ~args:[ Reg skb; Reg len ] in
      Builder.ret b (Some (Reg r)))

(* Generic socket layer: dispatch through the proto ops table. *)
let sock_dispatch ctx (common : Common.t) ?nf ~name ~op ~security () =
  let mm = ctx.Ctx.mm in
  define ctx ~name ~params:2 (fun b ->
      let fd = Builder.param b 0 and len = Builder.param b 1 in
      if security then
        ignore (Gen_util.call ctx b common.Common.security_check [ Reg fd; Reg len ]);
      (match nf with
      | Some hook -> ignore (Gen_util.call ctx b hook [ Reg fd; Reg len ])
      | None -> ());
      let proto_addr = Builder.reg b in
      Builder.assign b proto_addr (Binop (Add, Reg fd, Imm mm.Memmap.proto_table));
      let proto = Builder.reg b in
      Builder.assign b proto (Load (Reg proto_addr));
      let scaled = Builder.reg b in
      Builder.assign b scaled (Binop (Mul, Reg proto, Imm mm.Memmap.ops_per_proto));
      let slot = Builder.reg b in
      Builder.assign b slot (Binop (Add, Reg scaled, Imm (mm.Memmap.sock_ops + op)));
      let r = Gen_util.icall_mem ctx b ~table_addr:slot ~args:[ Reg fd; Reg len ] in
      Builder.ret b (Some (Reg r)))

let build ctx common =
  let proto_names = [| "tcp"; "udp"; "unix_sock"; "raw" |] in
  let depths = [| 5; 3; 3; 2 |] in
  Array.iteri
    (fun proto pname -> build_proto ctx common ~proto ~pname ~depth:depths.(proto))
    proto_names;
  let nf_hook_slow = build_netfilter ctx in
  let sock_sendmsg =
    sock_dispatch ctx common ~nf:nf_hook_slow ~name:"sock_sendmsg" ~op:Memmap.sop_sendmsg
      ~security:true ()
  in
  let sock_recvmsg =
    sock_dispatch ctx common ~nf:nf_hook_slow ~name:"sock_recvmsg" ~op:Memmap.sop_recvmsg
      ~security:true ()
  in
  let sock_poll =
    sock_dispatch ctx common ~name:"sock_poll" ~op:Memmap.sop_poll ~security:false ()
  in
  let sock_connect =
    sock_dispatch ctx common ~nf:nf_hook_slow ~name:"sock_connect" ~op:Memmap.sop_connect
      ~security:true ()
  in
  let sock_accept =
    sock_dispatch ctx common ~name:"sock_accept" ~op:Memmap.sop_accept ~security:true ()
  in
  (* sockfs: the vfs-facing wrappers for socket fds. *)
  let sockfs_read =
    define ctx ~name:"sockfs_read" ~params:2 (fun b ->
        let fd = Builder.param b 0 and len = Builder.param b 1 in
        let r = Gen_util.call ctx b sock_recvmsg [ Reg fd; Reg len ] in
        Builder.ret b (Some (Reg r)))
  in
  let sockfs_write =
    define ctx ~name:"sockfs_write" ~params:2 (fun b ->
        let fd = Builder.param b 0 and len = Builder.param b 1 in
        let r = Gen_util.call ctx b sock_sendmsg [ Reg fd; Reg len ] in
        Builder.ret b (Some (Reg r)))
  in
  let sockfs_poll =
    define ctx ~name:"sockfs_poll" ~params:2 (fun b ->
        let fd = Builder.param b 0 and len = Builder.param b 1 in
        let r = Gen_util.call ctx b sock_poll [ Reg fd; Reg len ] in
        Builder.ret b (Some (Reg r)))
  in
  {
    sock_sendmsg;
    sock_recvmsg;
    sock_poll;
    sock_connect;
    sock_accept;
    sockfs_read;
    sockfs_write;
    sockfs_poll;
    proto_names;
  }
