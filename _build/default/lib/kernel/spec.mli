(** A SPEC-CPU2006-shaped userspace suite plus the Table-1
    microbenchmarks.

    The paper's Table 1 measures per-branch defense costs with empty
    callees and unpredictable targets, then reports each defense's
    geometric-mean slowdown on SPEC CPU2006.  We reproduce both: [micro_*]
    entries run [n] direct / indirect / virtual calls in a loop, and the
    ten [benchmarks] imitate the call-density spread of the SPEC suite
    (call-heavy perlbench/xalanc vs. compute-bound hmmer/libquantum). *)

type t = {
  prog : Pibe_ir.Program.t;
  benchmarks : (string * string) list;  (** (display name, entry function) *)
  micro_dcall : string;  (** entry: [micro_dcall (iters, _)] *)
  micro_icall : string;
  micro_vcall : string;
}

val build : unit -> t
(** Deterministic (fixed internal seed). *)

val bench_iters : int
(** Loop count used by the experiment harness for each benchmark entry. *)

val micro_iters : int
