(** Block layer and crypto subsystem.

    Disk filesystems submit I/O through per-scheduler operation tables
    (noop / deadline / cfq) — one more layer of [*_ops] indirect dispatch
    on the fsync/writeback path that DBench-style workloads exercise —
    and checksumming filesystems plus the exec path hash through the
    crypto-algorithm table. *)

type t = {
  submit_bio : string;  (** dispatches through the I/O-scheduler ops *)
  blk_flush : string;
  crypto_hash : string;  (** dispatches through the algorithm ops *)
}

val build : Ctx.t -> Common.t -> t
