open Pibe_ir
open Types

type t = {
  do_mmap : string;
  handle_page_fault : string;
  do_brk : string;
  pv_flush_tlb_slot : int;
  pv_call_site : int;
}

let sub = "mm"

let define ctx ~name ~params body =
  let b = Builder.create ~name ~params in
  body b;
  Ctx.add ctx (Builder.finish b ~attrs:{ default_attrs with subsystem = sub } ());
  name

(* Emit a para-virt hypercall: an inline-assembly memory-indirect call
   through a pv_ops slot.  Returns the site id. *)
let pv_call ctx b ~slot =
  let addr = Builder.reg b in
  Builder.assign b addr (Const slot);
  let fp = Builder.reg b in
  Builder.assign b fp (Load (Reg addr));
  let site = Ctx.site ctx in
  Builder.asm_icall b site ~fptr:(Reg fp);
  site.site_id

let build ctx (common : Common.t) =
  let mm = ctx.Ctx.mm in
  (* Native pv handlers, registered into pv_ops. *)
  let pv_handler i =
    let name =
      Gen_util.leaf ctx
        ~name:(Printf.sprintf "native_pv_op_%d" i)
        ~params:0 ~compute:4 ~subsystem:sub
    in
    let idx = Ctx.register_fptr ctx name in
    Ctx.init_global ctx ~addr:(mm.Memmap.pv_ops + i) ~value:idx
  in
  for i = 0 to mm.Memmap.n_pv - 1 do
    pv_handler i
  done;
  let pv_flush_tlb_slot = mm.Memmap.pv_ops in
  let vma_setup =
    Gen_util.chain ctx ~name:"vma_setup" ~depth:3 ~compute:10 ~subsystem:sub
      ~extra_callees:[ common.Common.kmalloc ] ()
  in
  let fault_around =
    Gen_util.chain ctx ~name:"fault_around" ~depth:2 ~compute:10 ~subsystem:sub ()
  in
  let swap_in =
    Gen_util.chain ctx ~name:"swap_in" ~depth:3 ~compute:14 ~subsystem:sub
      ~extra_callees:[ common.Common.kmalloc ] ()
  in
  let pv_site = ref (-1) in
  let do_mmap =
    define ctx ~name:"do_mmap" ~params:2 (fun b ->
        let addr = Builder.param b 0 and len = Builder.param b 1 in
        ignore (Gen_util.call ctx b common.Common.security_check [ Reg addr; Reg len ]);
        let v = Gen_util.compute ctx b ~seeds:[ addr; len ] ~n:10 in
        ignore (Gen_util.call ctx b vma_setup [ Reg v; Reg len ]);
        pv_site := pv_call ctx b ~slot:pv_flush_tlb_slot;
        Builder.ret b (Some (Reg v)))
  in
  let handle_page_fault =
    define ctx ~name:"handle_page_fault" ~params:2 (fun b ->
        let addr = Builder.param b 0 and code = Builder.param b 1 in
        let v = Gen_util.compute ctx b ~seeds:[ addr; code ] ~n:12 in
        (* ~1/64 of faults go to the (much deeper) swap path. *)
        let masked = Builder.reg b in
        Builder.assign b masked (Binop (And, Reg addr, Imm 63));
        let is_zero = Builder.reg b in
        Builder.assign b is_zero (Binop (Eq, Reg masked, Imm 0));
        let slow = Builder.new_block b in
        let fast = Builder.new_block b in
        Builder.br b (Reg is_zero) slow fast;
        Builder.switch_to b slow;
        ignore (Gen_util.call ctx b swap_in [ Reg addr; Reg code ]);
        Builder.jmp b fast;
        Builder.switch_to b fast;
        let r = Gen_util.call ctx b fault_around [ Reg v; Reg code ] in
        ignore (pv_call ctx b ~slot:(pv_flush_tlb_slot + 1));
        Builder.ret b (Some (Reg r)))
  in
  let do_brk =
    define ctx ~name:"do_brk" ~params:2 (fun b ->
        let addr = Builder.param b 0 and len = Builder.param b 1 in
        let v = Gen_util.compute ctx b ~seeds:[ addr; len ] ~n:8 in
        ignore (Gen_util.call ctx b vma_setup [ Reg v; Reg len ]);
        Builder.ret b (Some (Reg v)))
  in
  { do_mmap; handle_page_fault; do_brk; pv_flush_tlb_slot; pv_call_site = !pv_site }
