(** Workload drivers: LMBench-style micro operations and the
    Apache/Nginx/DBench-style macro request mixes (paper §8).

    An [op] runs one iteration of a micro-benchmark — one or a few
    syscalls with arguments drawn from the op's own RNG stream (fd
    popularity is Zipfian, giving the multi-target profiles of paper
    Table 4).  A [mix] runs one application-level request composed of many
    syscalls. *)

type op = {
  op_name : string;
  run : Pibe_cpu.Engine.t -> Pibe_util.Rng.t -> unit;
}

val lmbench : Gen.info -> op list
(** The 20 LMBench latency tests of paper Table 2, in table order:
    null, read, write, open, stat, fstat, af_unix, fork/exit, fork/exec,
    fork/shell, pipe, select_file, select_tcp, tcp_conn, udp, tcp, mmap,
    page_fault, sig_install, sig_dispatch. *)

val lmbench_op : Gen.info -> string -> op
(** Lookup by name; raises [Not_found]. *)

type mix = {
  mix_name : string;
  request : Pibe_cpu.Engine.t -> Pibe_util.Rng.t -> unit;
      (** one application request / transaction *)
  user_ratio : float;
      (** userspace cycles per request as a fraction of the baseline
          kernel cycles — macro benchmarks spend most of their time in
          user code that defenses do not slow down, which is why paper
          Table 7's degradations are milder than LMBench's.  Calibrated
          per application (nginx is the most kernel-bound). *)
}

val apache : Gen.info -> mix
val nginx : Gen.info -> mix
val dbench : Gen.info -> mix
