(** Deferred-work machinery: timer/softirq callbacks dispatched through an
    in-memory callback table, run periodically from the syscall entry path
    (every 32nd syscall).  This adds the asynchronous indirect-call sites
    a real kernel profile contains beyond the ops-table dispatches. *)

type t = {
  run_timers : string;
  run_workqueue : string;
}

val build : Ctx.t -> Common.t -> t
