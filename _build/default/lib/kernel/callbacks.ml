open Pibe_ir
open Types

type t = {
  run_timers : string;
  run_workqueue : string;
}

let sub = "softirq"

let define ctx ~name ~params body =
  let b = Builder.create ~name ~params in
  body b;
  Ctx.add ctx (Builder.finish b ~attrs:{ default_attrs with subsystem = sub } ());
  name

let build ctx (common : Common.t) =
  let mm = ctx.Ctx.mm in
  (* Register the callback table: timers in slots 0-7, work items 8-11,
     RCU callbacks 12-15. *)
  let register slot name =
    let idx = Ctx.register_fptr ctx name in
    Ctx.init_global ctx ~addr:(mm.Memmap.timer_cbs + slot) ~value:idx
  in
  for i = 0 to 7 do
    register i
      (Gen_util.chain ctx
         ~name:(Printf.sprintf "timer_cb_%d" i)
         ~depth:(i mod 2) ~compute:6 ~subsystem:sub ())
  done;
  for i = 0 to 3 do
    register (8 + i)
      (Gen_util.chain ctx
         ~name:(Printf.sprintf "work_item_%d" i)
         ~depth:1 ~compute:8 ~subsystem:sub
         ~extra_callees:[ common.Common.kfree ] ())
  done;
  for i = 0 to 3 do
    register (12 + i)
      (Gen_util.leaf ctx
         ~name:(Printf.sprintf "rcu_cb_%d" i)
         ~params:2 ~compute:5 ~subsystem:sub)
  done;
  let cb_icall b ~mask ~base ~sel ~arg ctx =
    let masked = Builder.reg b in
    Builder.assign b masked (Binop (And, Reg sel, Imm mask));
    let addr = Builder.reg b in
    Builder.assign b addr (Binop (Add, Reg masked, Imm (mm.Memmap.timer_cbs + base)));
    ignore (Gen_util.icall_mem ctx b ~table_addr:addr ~args:[ Reg sel; Reg arg ])
  in
  let run_timers =
    define ctx ~name:"run_timers" ~params:2 (fun b ->
        let tick = Builder.param b 0 and arg = Builder.param b 1 in
        (* Two expired timers per softirq round: two distinct sites. *)
        cb_icall b ~mask:7 ~base:0 ~sel:tick ~arg ctx;
        let next = Builder.reg b in
        Builder.assign b next (Binop (Add, Reg tick, Imm 3));
        cb_icall b ~mask:7 ~base:0 ~sel:next ~arg ctx;
        (* An RCU grace period completes every so often. *)
        let gp = Builder.reg b in
        Builder.assign b gp (Binop (And, Reg tick, Imm 127));
        let is_gp = Builder.reg b in
        Builder.assign b is_gp (Binop (Eq, Reg gp, Imm 0));
        let rcu = Builder.new_block b in
        let out = Builder.new_block b in
        Builder.br b (Reg is_gp) rcu out;
        Builder.switch_to b rcu;
        cb_icall b ~mask:3 ~base:12 ~sel:tick ~arg ctx;
        Builder.jmp b out;
        Builder.switch_to b out;
        Builder.ret b (Some (Reg tick)))
  in
  let run_workqueue =
    define ctx ~name:"run_workqueue" ~params:2 (fun b ->
        let seq = Builder.param b 0 and arg = Builder.param b 1 in
        ignore (Gen_util.call ctx b common.Common.mutex_lock [ Reg seq; Reg seq ]);
        cb_icall b ~mask:3 ~base:8 ~sel:seq ~arg ctx;
        ignore (Gen_util.call ctx b common.Common.mutex_unlock [ Reg seq; Reg seq ]);
        Builder.ret b (Some (Reg seq)))
  in
  { run_timers; run_workqueue }
