(** Scheduler, signals, and process lifecycle (fork/exec/exit): the
    remaining hot subsystems LMBench exercises.  The scheduler dispatches
    through per-class operation tables; signal delivery dispatches through
    a handler table that [sys_sig_install] genuinely writes at runtime. *)

type t = {
  schedule : string;
  do_fork : string;
  do_exit : string;
  do_execve : string;
  sig_install : string;
  sig_dispatch : string;
  user_handler_base_fptr : int;
      (** fptr index of user handler 0; handlers 0-3 are consecutive *)
}

val build : Ctx.t -> Common.t -> Block.t -> Fs.t -> Mm.t -> t
