(** Global-memory layout of the synthetic kernel image.

    The generator materializes the dispatch state a real kernel keeps in
    memory: a file-descriptor table mapping fds to filesystem types,
    per-filesystem operation tables ([file_operations]), per-protocol
    socket operation tables ([proto_ops]), the para-virtualization call
    table ([pv_ops]), scheduler-class and signal tables, cold driver
    tables, plus scratch cells for computation and one "secret" cell the
    attack drills try to leak. *)

type t = {
  nfd : int;  (** file-descriptor table size *)
  nfs : int;  (** filesystem types *)
  nproto : int;  (** socket protocols *)
  ops_per_fs : int;
  ops_per_proto : int;
  n_pv : int;
  n_sched_class : int;
  ops_per_sched : int;
  n_sig : int;
  n_drv : int;
  ops_per_drv : int;
  fd_table : int;  (** base: cell [fd_table + fd] holds the fd's fs id *)
  proto_table : int;  (** base: cell [proto_table + fd] holds a socket fd's proto id *)
  vfs_ops : int;  (** base: cell [vfs_ops + fs*ops_per_fs + op] holds an fptr index *)
  sock_ops : int;
  pv_ops : int;
  sched_ops : int;
  sig_handlers : int;
  drv_ops : int;
  timer_cbs : int;  (** base of the timer/softirq callback table *)
  n_timer : int;
  lsm_hooks : int;  (** security-module hook table (4 entries) *)
  nf_hooks : int;  (** netfilter hook table (4 entries) *)
  blk_ops : int;  (** I/O-scheduler ops: [blk_ops + sched*ops_per_blk + op] *)
  n_blk_sched : int;
  ops_per_blk : int;
  crypto_ops : int;  (** crypto-algorithm ops: [crypto_ops + alg*ops_per_crypto + op] *)
  n_crypto : int;
  ops_per_crypto : int;
  tick : int;  (** jiffies-style counter bumped on every syscall *)
  scratch : int;
  scratch_len : int;  (** power of two *)
  secret : int;
  size : int;  (** total cells *)
}

(** Operation slots within a filesystem's table. *)
val op_read : int

val op_write : int
val op_open : int
val op_stat : int
val op_poll : int
val op_mmap : int
val op_fsync : int
val op_release : int

(** Operation slots within a protocol's table. *)
val sop_sendmsg : int

val sop_recvmsg : int
val sop_poll : int
val sop_connect : int
val sop_accept : int
val sop_shutdown : int

val make : nfs:int -> nproto:int -> n_drv:int -> t
(** Computes a packed layout; [nfd] is fixed at 128 and scratch at 256
    cells. *)

val blk_op_addr : t -> sched:int -> op:int -> int
val crypto_op_addr : t -> alg:int -> op:int -> int
val vfs_op_addr : t -> fs:int -> op:int -> int
val sock_op_addr : t -> proto:int -> op:int -> int
val drv_op_addr : t -> drv:int -> op:int -> int
