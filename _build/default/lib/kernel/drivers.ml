open Pibe_ir
open Types
module Rng = Pibe_util.Rng

type t = {
  drv_dispatch : string;
  n_cold_functions : int;
}

let sub = "drivers"

let define ctx ~name ~params ?(attrs = { default_attrs with subsystem = sub }) body =
  let b = Builder.create ~name ~params in
  body b;
  Ctx.add ctx (Builder.finish b ~attrs ());
  name

let build_driver ctx (common : Common.t) ~d =
  let mm = ctx.Ctx.mm in
  let rng = Ctx.rng ctx in
  let pre = Printf.sprintf "drv%d" d in
  let read =
    Gen_util.chain ctx ~name:(pre ^ "_read") ~depth:(1 + Rng.int rng 2) ~compute:8
      ~subsystem:sub ()
  in
  let write =
    Gen_util.chain ctx ~name:(pre ^ "_write") ~depth:(1 + Rng.int rng 2) ~compute:8
      ~subsystem:sub ()
  in
  let isr =
    Gen_util.leaf ctx ~name:(pre ^ "_isr") ~params:2 ~compute:(4 + Rng.int rng 8)
      ~subsystem:sub
  in
  (* ioctl: a multiway switch the compiler would lower as a jump table. *)
  let case_helpers =
    List.init
      (3 + Rng.int rng 4)
      (fun i ->
        Gen_util.leaf ctx
          ~name:(Printf.sprintf "%s_ioctl_case%d" pre i)
          ~params:2
          ~compute:(5 + Rng.int rng 10)
          ~subsystem:sub)
  in
  let ioctl =
    define ctx ~name:(pre ^ "_ioctl") ~params:2 (fun b ->
        let cmd = Builder.param b 0 and arg = Builder.param b 1 in
        let masked = Builder.reg b in
        Builder.assign b masked (Binop (And, Reg cmd, Imm 15));
        let blocks =
          List.map
            (fun helper ->
              let l = Builder.new_block b in
              (l, helper))
            case_helpers
        in
        let default = Builder.new_block b in
        let join = Builder.new_block b in
        Builder.switch b ~lowering:Jump_table (Reg masked)
          (List.mapi (fun i (l, _) -> (i, l)) blocks)
          ~default;
        List.iter
          (fun (l, helper) ->
            Builder.switch_to b l;
            ignore (Gen_util.call ctx b helper [ Reg cmd; Reg arg ]);
            Builder.jmp b join)
          blocks;
        Builder.switch_to b default;
        ignore (Gen_util.call ctx b common.Common.audit_hook [ Reg cmd; Imm 0 ]);
        Builder.jmp b join;
        Builder.switch_to b join;
        Builder.ret b (Some (Reg arg)))
  in
  (* Boot-only probe path. *)
  let probe_inner =
    Gen_util.chain ctx ~name:(pre ^ "_probe_hw") ~depth:1 ~compute:10 ~subsystem:sub ()
  in
  let _probe =
    define ctx ~name:(pre ^ "_probe") ~params:2
      ~attrs:{ default_attrs with subsystem = sub; boot_only = true }
      (fun b ->
        let dev = Builder.param b 0 and id = Builder.param b 1 in
        ignore (Gen_util.call ctx b probe_inner [ Reg dev; Reg id ]);
        ignore (Gen_util.call ctx b common.Common.kmalloc [ Reg dev; Imm 128 ]);
        Builder.ret b (Some (Reg dev)))
  in
  List.iteri
    (fun op name ->
      let idx = Ctx.register_fptr ctx name in
      Ctx.init_global ctx ~addr:(Memmap.drv_op_addr mm ~drv:d ~op) ~value:idx)
    [ read; write; ioctl; isr ]

(* Opaque assembly stubs: jump tables and memory-indirect calls no pass
   may rewrite (the residual vulnerable surface of Table 11). *)
let build_asm_stubs ctx =
  let mm = ctx.Ctx.mm in
  let asm_attrs = { default_attrs with subsystem = "asm"; is_asm = true; noinline = true } in
  let targets =
    List.init 3 (fun i ->
        Gen_util.leaf ctx
          ~name:(Printf.sprintf "asm_target_%d" i)
          ~params:2 ~compute:3 ~subsystem:"asm")
  in
  List.iteri
    (fun i _ ->
      ignore
        (define ctx
           ~name:(Printf.sprintf "asm_entry_stub_%d" i)
           ~params:2 ~attrs:asm_attrs
           (fun b ->
             let a = Builder.param b 0 and x = Builder.param b 1 in
             let masked = Builder.reg b in
             Builder.assign b masked (Binop (And, Reg a, Imm 3));
             let bl = List.init 4 (fun _ -> Builder.new_block b) in
             let join = Builder.new_block b in
             Builder.switch b ~lowering:Jump_table (Reg masked)
               (List.mapi (fun j l -> (j, l)) bl)
               ~default:join;
             List.iteri
               (fun j l ->
                 Builder.switch_to b l;
                 ignore
                   (Gen_util.call ctx b (List.nth targets (j mod 3)) [ Reg a; Reg x ]);
                 Builder.jmp b join)
               bl;
             Builder.switch_to b join;
             (* A pv-style memory-indirect call from assembly. *)
             let addr = Builder.reg b in
             Builder.assign b addr (Const (mm.Memmap.pv_ops + (i mod mm.Memmap.n_pv)));
             let fp = Builder.reg b in
             Builder.assign b fp (Load (Reg addr));
             Builder.asm_icall b (Ctx.site ctx) ~fptr:(Reg fp);
             Builder.ret b (Some (Reg x)))))
    targets

let build_cold_bulk ctx (common : Common.t) =
  let mm = ctx.Ctx.mm in
  let rng = Ctx.rng ctx in
  (* Cold callback sites: indirect calls through driver ops slots that the
     workloads (almost) never reach but every hardening pass must cover. *)
  let cold_cb i =
    let name = Printf.sprintf "cold_cb_%d" i in
    let b = Pibe_ir.Builder.create ~name ~params:2 in
    let a0 = Pibe_ir.Builder.param b 0 and a1 = Pibe_ir.Builder.param b 1 in
    let v = Gen_util.compute ctx b ~seeds:[ a0; a1 ] ~n:(4 + Rng.int rng 8) in
    let dmask = Pibe_ir.Builder.reg b in
    Pibe_ir.Builder.assign b dmask (Binop (And, Reg v, Imm (mm.Memmap.n_drv - 1)));
    let scaled = Pibe_ir.Builder.reg b in
    Pibe_ir.Builder.assign b scaled (Binop (Mul, Reg dmask, Imm mm.Memmap.ops_per_drv));
    let slot = Pibe_ir.Builder.reg b in
    Pibe_ir.Builder.assign b slot (Binop (Add, Reg scaled, Imm mm.Memmap.drv_ops));
    let r = Gen_util.icall_mem ctx b ~table_addr:slot ~args:[ Reg a0; Reg v ] in
    Pibe_ir.Builder.ret b (Some (Reg r));
    Ctx.add ctx
      (Pibe_ir.Builder.finish b
         ~attrs:{ Pibe_ir.Types.default_attrs with subsystem = "lib" }
         ());
    name
  in
  let n_cb = 30 * ctx.Ctx.cfg.Ctx.scale in
  let cbs = List.init n_cb cold_cb in
  let n = 110 * ctx.Ctx.cfg.Ctx.scale in
  let count = ref (n_cb) in
  for i = 0 to n - 1 do
    let depth = Rng.int rng 3 in
    let compute = 5 + Rng.int rng 18 in
    let extra =
      match Rng.int rng 5 with
      | 0 -> [ common.Common.kmalloc ]
      | 1 -> [ common.Common.memcpy_small ]
      | 2 -> [ common.Common.mutex_lock; common.Common.mutex_unlock ]
      | 3 -> [ List.nth cbs (Rng.int rng n_cb) ]
      | _ -> []
    in
    let name = Printf.sprintf "cold_util_%d" i in
    ignore (Gen_util.chain ctx ~name ~depth ~compute ~subsystem:"lib" ~extra_callees:extra ());
    count := !count + depth + 1;
    (* Sprinkle attribute variety the passes must respect. *)
    if Rng.int rng 17 = 0 then begin
      let f = Program.find ctx.Ctx.prog name in
      ctx.Ctx.prog <-
        Program.update_func ctx.Ctx.prog
          { f with attrs = { f.attrs with noinline = true } }
    end
    else if Rng.int rng 23 = 0 then begin
      let f = Program.find ctx.Ctx.prog name in
      ctx.Ctx.prog <-
        Program.update_func ctx.Ctx.prog { f with attrs = { f.attrs with optnone = true } }
    end
  done;
  (* Boot-time init that walks the probes. *)
  let boot_attrs = { default_attrs with subsystem = "init"; boot_only = true } in
  for i = 0 to (2 * ctx.Ctx.cfg.Ctx.scale) - 1 do
    ignore
      (define ctx
         ~name:(Printf.sprintf "__init_subsys_%d" i)
         ~params:2 ~attrs:boot_attrs
         (fun b ->
           let a = Builder.param b 0 in
           let v = Gen_util.compute ctx b ~seeds:[ a ] ~n:10 in
           ignore
             (Gen_util.call ctx b
                (Printf.sprintf "drv%d_probe" (i mod ctx.Ctx.mm.Memmap.n_drv))
                [ Reg v; Imm i ]);
           Builder.ret b (Some (Reg v))))
  done;
  !count

let build ctx (common : Common.t) =
  let mm = ctx.Ctx.mm in
  for d = 0 to mm.Memmap.n_drv - 1 do
    build_driver ctx common ~d
  done;
  build_asm_stubs ctx;
  (* Generic dispatch through a driver ops table: a cold indirect-call
     site exercised only rarely. *)
  let drv_dispatch =
    define ctx ~name:"drv_dispatch" ~params:2 (fun b ->
        let drv = Builder.param b 0 and op = Builder.param b 1 in
        let dmask = Builder.reg b in
        Builder.assign b dmask (Binop (And, Reg drv, Imm (mm.Memmap.n_drv - 1))) ;
        let omask = Builder.reg b in
        Builder.assign b omask (Binop (And, Reg op, Imm (mm.Memmap.ops_per_drv - 1)));
        let scaled = Builder.reg b in
        Builder.assign b scaled (Binop (Mul, Reg dmask, Imm mm.Memmap.ops_per_drv));
        let off = Builder.reg b in
        Builder.assign b off (Binop (Add, Reg scaled, Reg omask));
        let slot = Builder.reg b in
        Builder.assign b slot (Binop (Add, Reg off, Imm mm.Memmap.drv_ops));
        let r = Gen_util.icall_mem ctx b ~table_addr:slot ~args:[ Reg drv; Reg op ] in
        Builder.ret b (Some (Reg r)))
  in
  let n_cold = build_cold_bulk ctx common in
  { drv_dispatch; n_cold_functions = n_cold }
