(** The VFS layer and the filesystem implementations.

    Eight filesystem types (ext4/xfs/btrfs/tmpfs/procfs/devfs plus pipefs
    and net's sockfs) register read/write/open/stat/poll/mmap/fsync/release
    implementations in the per-fs operation tables; the generic [vfs_*]
    entry paths dispatch through them, exactly the [file_operations]
    pattern whose indirect calls PIBE promotes.  [victim_icall_site] (the
    indirect call inside [vfs_read]) and [victim_ops_addr] (the ext4 read
    slot) anchor the attack drills. *)

type t = {
  vfs_read : string;
  vfs_write : string;
  do_filp_open : string;
  vfs_stat : string;
  vfs_fstat : string;
  vfs_poll : string;
  vfs_fsync : string;
  fs_names : string array;
  victim_icall_site : int;
  victim_ops_addr : int;
}

val build : Ctx.t -> Common.t -> Block.t -> Net.t -> t
