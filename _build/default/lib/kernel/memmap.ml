type t = {
  nfd : int;
  nfs : int;
  nproto : int;
  ops_per_fs : int;
  ops_per_proto : int;
  n_pv : int;
  n_sched_class : int;
  ops_per_sched : int;
  n_sig : int;
  n_drv : int;
  ops_per_drv : int;
  fd_table : int;
  proto_table : int;
  vfs_ops : int;
  sock_ops : int;
  pv_ops : int;
  sched_ops : int;
  sig_handlers : int;
  drv_ops : int;
  timer_cbs : int;
  n_timer : int;
  lsm_hooks : int;
  nf_hooks : int;
  blk_ops : int;
  n_blk_sched : int;
  ops_per_blk : int;
  crypto_ops : int;
  n_crypto : int;
  ops_per_crypto : int;
  tick : int;
  scratch : int;
  scratch_len : int;
  secret : int;
  size : int;
}

let op_read = 0
let op_write = 1
let op_open = 2
let op_stat = 3
let op_poll = 4
let op_mmap = 5
let op_fsync = 6
let op_release = 7
let sop_sendmsg = 0
let sop_recvmsg = 1
let sop_poll = 2
let sop_connect = 3
let sop_accept = 4
let sop_shutdown = 5

let make ~nfs ~nproto ~n_drv =
  let nfd = 128 in
  let ops_per_fs = 8 in
  let ops_per_proto = 6 in
  let n_pv = 8 in
  let n_sched_class = 4 in
  let ops_per_sched = 4 in
  let n_sig = 16 in
  let ops_per_drv = 4 in
  let scratch_len = 256 in
  let cursor = ref 0 in
  let region len =
    let base = !cursor in
    cursor := base + len;
    base
  in
  let fd_table = region nfd in
  let proto_table = region nfd in
  let vfs_ops = region (nfs * ops_per_fs) in
  let sock_ops = region (nproto * ops_per_proto) in
  let pv_ops = region n_pv in
  let sched_ops = region (n_sched_class * ops_per_sched) in
  let sig_handlers = region n_sig in
  let drv_ops = region (n_drv * ops_per_drv) in
  let n_timer = 16 in
  let timer_cbs = region n_timer in
  let lsm_hooks = region 4 in
  let nf_hooks = region 4 in
  let n_blk_sched = 3 in
  let ops_per_blk = 4 in
  let blk_ops = region (n_blk_sched * ops_per_blk) in
  let n_crypto = 4 in
  let ops_per_crypto = 3 in
  let crypto_ops = region (n_crypto * ops_per_crypto) in
  let tick = region 1 in
  let scratch = region scratch_len in
  let secret = region 1 in
  {
    nfd;
    nfs;
    nproto;
    ops_per_fs;
    ops_per_proto;
    n_pv;
    n_sched_class;
    ops_per_sched;
    n_sig;
    n_drv;
    ops_per_drv;
    fd_table;
    proto_table;
    vfs_ops;
    sock_ops;
    pv_ops;
    sched_ops;
    sig_handlers;
    drv_ops;
    timer_cbs;
    n_timer;
    lsm_hooks;
    nf_hooks;
    blk_ops;
    n_blk_sched;
    ops_per_blk;
    crypto_ops;
    n_crypto;
    ops_per_crypto;
    tick;
    scratch;
    scratch_len;
    secret;
    size = !cursor;
  }

let blk_op_addr t ~sched ~op = t.blk_ops + (sched * t.ops_per_blk) + op
let crypto_op_addr t ~alg ~op = t.crypto_ops + (alg * t.ops_per_crypto) + op
let vfs_op_addr t ~fs ~op = t.vfs_ops + (fs * t.ops_per_fs) + op
let sock_op_addr t ~proto ~op = t.sock_ops + (proto * t.ops_per_proto) + op
let drv_op_addr t ~drv ~op = t.drv_ops + (drv * t.ops_per_drv) + op
