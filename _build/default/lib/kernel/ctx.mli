(** Mutable generation context threaded through the subsystem builders. *)

open Pibe_ir

type config = {
  seed : int;
  scale : int;
      (** 1 = unit-test size (hundreds of functions); 3-4 = bench size
          (thousands).  Scales the cold bulk — drivers, init code — while
          the hot paths keep their shape. *)
}

val default_config : config
(** seed 42, scale 2. *)

type t = {
  mutable prog : Program.t;
  rng : Pibe_util.Rng.t;
  mm : Memmap.t;
  cfg : config;
}

val create : config -> Memmap.t -> t

val site : t -> Types.site
(** Fresh call site. *)

val add : t -> Types.func -> unit
val register_fptr : t -> string -> int
(** Function index used as the in-memory function-pointer value. *)

val init_global : t -> addr:int -> value:int -> unit
val rng : t -> Pibe_util.Rng.t
