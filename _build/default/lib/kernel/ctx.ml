open Pibe_ir

type config = {
  seed : int;
  scale : int;
}

let default_config = { seed = 42; scale = 2 }

type t = {
  mutable prog : Program.t;
  rng : Pibe_util.Rng.t;
  mm : Memmap.t;
  cfg : config;
}

let create cfg mm =
  {
    prog = Program.with_globals_size Program.empty mm.Memmap.size;
    rng = Pibe_util.Rng.create cfg.seed;
    mm;
    cfg;
  }

let site t =
  let p, s = Program.fresh_site t.prog in
  t.prog <- p;
  s

let add t f = t.prog <- Program.add_func t.prog f

let register_fptr t name =
  let p, i = Program.add_fptr t.prog name in
  t.prog <- p;
  i

let init_global t ~addr ~value = t.prog <- Program.set_global t.prog ~addr ~value
let rng t = t.rng
