(** Memory management: mmap, page-fault handling, and the
    para-virtualization call layer.

    The pv layer is the paper's §8.6 finding made concrete: hypercalls go
    through inline-assembly memory-indirect calls ([Asm_icall]) that no
    LLVM pass can convert, so they stay vulnerable in every hardened
    image. *)

type t = {
  do_mmap : string;
  handle_page_fault : string;
  do_brk : string;
  pv_flush_tlb_slot : int;  (** pv_ops cell the mmap path calls through *)
  pv_call_site : int;  (** site id of the asm hypercall inside [do_mmap] *)
}

val build : Ctx.t -> Common.t -> t
