lib/kernel/gen_util.mli: Builder Ctx Pibe_ir Types
