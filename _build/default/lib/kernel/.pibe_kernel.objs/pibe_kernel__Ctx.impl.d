lib/kernel/ctx.ml: Memmap Pibe_ir Pibe_util Program
