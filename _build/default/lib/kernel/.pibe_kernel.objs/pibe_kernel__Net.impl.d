lib/kernel/net.ml: Array Builder Common Ctx Gen_util List Memmap Pibe_ir Types
