lib/kernel/memmap.ml:
