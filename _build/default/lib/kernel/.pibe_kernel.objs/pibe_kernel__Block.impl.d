lib/kernel/block.ml: Builder Common Ctx Gen_util List Memmap Pibe_ir Printf Types
