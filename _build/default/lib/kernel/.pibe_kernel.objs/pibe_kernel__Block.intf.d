lib/kernel/block.mli: Common Ctx
