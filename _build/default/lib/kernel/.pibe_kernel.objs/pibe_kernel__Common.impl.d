lib/kernel/common.ml: Ctx Gen_util List Memmap Pibe_ir
