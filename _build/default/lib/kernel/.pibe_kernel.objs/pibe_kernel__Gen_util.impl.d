lib/kernel/gen_util.ml: Array Builder Ctx List Memmap Pibe_ir Pibe_util Printf Types
