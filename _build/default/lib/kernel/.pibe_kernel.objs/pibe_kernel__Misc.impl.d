lib/kernel/misc.ml: Array Block Builder Common Ctx Fs Gen_util List Memmap Mm Pibe_ir Printf Types
