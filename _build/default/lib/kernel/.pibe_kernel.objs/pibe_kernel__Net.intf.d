lib/kernel/net.mli: Common Ctx
