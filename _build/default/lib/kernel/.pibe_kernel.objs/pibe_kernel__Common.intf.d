lib/kernel/common.mli: Ctx
