lib/kernel/spec.mli: Pibe_ir
