lib/kernel/drivers.mli: Common Ctx
