lib/kernel/gen.mli: Ctx Fs Memmap Net Pibe_ir Syscalls
