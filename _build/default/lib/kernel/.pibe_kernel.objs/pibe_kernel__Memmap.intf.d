lib/kernel/memmap.mli:
