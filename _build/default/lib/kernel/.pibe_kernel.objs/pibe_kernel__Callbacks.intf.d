lib/kernel/callbacks.mli: Common Ctx
