lib/kernel/ctx.mli: Memmap Pibe_ir Pibe_util Program Types
