lib/kernel/fs.ml: Array Block Builder Common Ctx Gen_util List Memmap Net Pibe_ir String Types
