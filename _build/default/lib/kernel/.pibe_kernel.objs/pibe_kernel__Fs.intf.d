lib/kernel/fs.mli: Block Common Ctx Net
