lib/kernel/mm.mli: Common Ctx
