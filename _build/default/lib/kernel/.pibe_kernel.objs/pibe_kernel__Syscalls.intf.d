lib/kernel/syscalls.mli: Callbacks Common Ctx Drivers Fs Misc Mm Net
