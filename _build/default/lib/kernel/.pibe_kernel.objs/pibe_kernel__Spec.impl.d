lib/kernel/spec.ml: Builder Ctx Gen_util List Memmap Pibe_ir Printf Program Types Validate
