lib/kernel/workload.ml: Gen List Pibe_cpu Pibe_util String
