lib/kernel/workload.mli: Gen Pibe_cpu Pibe_util
