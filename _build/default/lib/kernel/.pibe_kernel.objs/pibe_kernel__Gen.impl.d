lib/kernel/gen.ml: Block Builder Callbacks Common Ctx Drivers Fs Memmap Misc Mm Net Pibe_ir Program Syscalls Types Validate
