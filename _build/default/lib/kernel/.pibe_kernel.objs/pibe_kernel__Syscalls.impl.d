lib/kernel/syscalls.ml: Builder Callbacks Common Ctx Drivers Fs Gen_util List Memmap Misc Mm Net Pibe_ir Types
