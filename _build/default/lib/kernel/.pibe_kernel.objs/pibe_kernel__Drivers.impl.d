lib/kernel/drivers.ml: Builder Common Ctx Gen_util List Memmap Pibe_ir Pibe_util Printf Program Types
