lib/kernel/misc.mli: Block Common Ctx Fs Mm
