lib/kernel/mm.ml: Builder Common Ctx Gen_util Memmap Pibe_ir Printf Types
