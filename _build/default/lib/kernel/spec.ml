open Pibe_ir
open Types

type t = {
  prog : Program.t;
  benchmarks : (string * string) list;
  micro_dcall : string;
  micro_icall : string;
  micro_vcall : string;
}

let bench_iters = 400
let micro_iters = 2000
let sub = "spec"

let define ctx ~name ~params body =
  let b = Builder.create ~name ~params in
  body b;
  Ctx.add ctx (Builder.finish b ~attrs:{ default_attrs with subsystem = sub } ());
  name

(* An 8-slot virtual table living in the drv_ops region. *)
let make_vtable ctx ~tag ~compute =
  let mm = ctx.Ctx.mm in
  List.init 8 (fun i ->
      let name =
        Gen_util.leaf ctx
          ~name:(Printf.sprintf "%s_virt_%d" tag i)
          ~params:2 ~compute ~subsystem:sub
      in
      let idx = Ctx.register_fptr ctx name in
      let addr = Memmap.drv_op_addr mm ~drv:(i / mm.Memmap.ops_per_drv) ~op:(i mod mm.Memmap.ops_per_drv) in
      Ctx.init_global ctx ~addr ~value:idx;
      addr)

(* body is given (builder, induction reg) and runs once per iteration. *)
let looped ctx ~name ~body =
  define ctx ~name ~params:2 (fun b ->
      let iters = Builder.param b 0 and seed = Builder.param b 1 in
      ignore seed;
      let acc =
        Gen_util.loop ctx b ~count:(Reg iters) ~body:(fun b i -> body b i)
      in
      match acc with
      | Some r -> Builder.ret b (Some (Reg r))
      | None -> Builder.ret b (Some (Imm 0)))

let icall_rotating ctx b ~slots ~i ~args =
  (* Rotate through the vtable slots so the target is unpredictable. *)
  let n = List.length slots in
  let base = List.hd slots in
  let masked = Builder.reg b in
  Builder.assign b masked (Binop (And, Reg i, Imm (n - 1)));
  let addr = Builder.reg b in
  Builder.assign b addr (Binop (Add, Reg masked, Imm base));
  Gen_util.icall_mem ctx b ~table_addr:addr ~args

(* Fixed hot target: the per-branch tick deltas of paper Table 1 are
   measured against a *predicted* baseline transfer. *)
let icall_fixed ctx b ~slots ~args =
  let base = List.hd slots in
  let addr = Builder.reg b in
  Builder.assign b addr (Const base);
  Gen_util.icall_mem ctx b ~table_addr:addr ~args

let build () =
  let mm = Memmap.make ~nfs:1 ~nproto:1 ~n_drv:4 in
  let ctx = Ctx.create { Ctx.seed = 1337; scale = 1 } mm in
  let empty =
    define ctx ~name:"spec_empty" ~params:2 (fun b ->
        Builder.ret b (Some (Reg (Builder.param b 0))))
  in
  let vslots = make_vtable ctx ~tag:"spec" ~compute:4 in
  (* vcall: object -> vtable -> slot, two dependent loads.  The object
     pointer lives in the (otherwise unused) tick cell so leaf compute
     stores into scratch cannot clobber it. *)
  let obj_cell = mm.Memmap.tick in
  Ctx.init_global ctx ~addr:obj_cell ~value:(List.hd vslots);
  let micro_dcall =
    looped ctx ~name:"micro_dcall" ~body:(fun b i ->
        Some (Gen_util.call ctx b empty [ Reg i; Imm 0 ]))
  in
  let micro_icall =
    looped ctx ~name:"micro_icall" ~body:(fun b i ->
        Some (icall_fixed ctx b ~slots:vslots ~args:[ Reg i; Imm 0 ]))
  in
  let micro_vcall =
    looped ctx ~name:"micro_vcall" ~body:(fun b i ->
        let pobj = Builder.reg b in
        Builder.assign b pobj (Const obj_cell);
        let slot_addr = Builder.reg b in
        Builder.assign b slot_addr (Load (Reg pobj));
        Some (Gen_util.icall_mem ctx b ~table_addr:slot_addr ~args:[ Reg i; Imm 0 ]))
  in
  (* --- the SPEC-shaped suite --- *)
  let chain name depth compute =
    Gen_util.chain ctx ~name ~depth ~compute ~subsystem:sub ()
  in
  let bench name ~body = (name, looped ctx ~name:("spec_" ^ name) ~body) in
  let perl_top = chain "perl_runops" 6 10 in
  let perlbench =
    bench "perlbench" ~body:(fun b i ->
        Some (Gen_util.call ctx b perl_top [ Reg i; Imm 3 ]))
  in
  let bzip_helper = chain "bzip_sort" 1 12 in
  let bzip2 =
    bench "bzip2" ~body:(fun b i ->
        let v = Gen_util.compute ctx b ~seeds:[ i ] ~n:45 in
        Some (Gen_util.call ctx b bzip_helper [ Reg v; Reg i ]))
  in
  let gcc_fold = chain "gcc_fold" 3 9 in
  let gcc =
    bench "gcc" ~body:(fun b i ->
        let v = icall_rotating ctx b ~slots:vslots ~i ~args:[ Reg i; Imm 1 ] in
        ignore (Gen_util.call ctx b gcc_fold [ Reg v; Reg i ]);
        Some (icall_rotating ctx b ~slots:vslots ~i ~args:[ Reg v; Imm 2 ]))
  in
  let mcf =
    bench "mcf" ~body:(fun b i ->
        let v = Gen_util.compute ctx b ~seeds:[ i ] ~n:35 in
        Some v)
  in
  let gobmk_helper = chain "gobmk_play" 2 10 in
  let gobmk =
    bench "gobmk" ~body:(fun b i ->
        let v = icall_rotating ctx b ~slots:vslots ~i ~args:[ Reg i; Imm 0 ] in
        Some (Gen_util.call ctx b gobmk_helper [ Reg v; Reg i ]))
  in
  let hmmer =
    bench "hmmer" ~body:(fun b i ->
        let v = Gen_util.compute ctx b ~seeds:[ i ] ~n:70 in
        Some v)
  in
  let sjeng_eval = chain "sjeng_eval" 2 8 in
  let sjeng =
    bench "sjeng" ~body:(fun b i ->
        let masked = Builder.reg b in
        Builder.assign b masked (Binop (And, Reg i, Imm 7));
        let cases = List.init 8 (fun _ -> Builder.new_block b) in
        let join = Builder.new_block b in
        Builder.switch b ~lowering:Jump_table (Reg masked)
          (List.mapi (fun j l -> (j, l)) cases)
          ~default:join;
        let out = Builder.reg b in
        List.iteri
          (fun j l ->
            Builder.switch_to b l;
            let r = Gen_util.call ctx b sjeng_eval [ Reg i; Imm j ] in
            Builder.assign b out (Move (Reg r));
            Builder.jmp b join)
          cases;
        Builder.switch_to b join;
        Some out)
  in
  let libquantum =
    bench "libquantum" ~body:(fun b i ->
        let v = Gen_util.compute ctx b ~seeds:[ i ] ~n:55 in
        Some v)
  in
  let h264_mc = chain "h264_mc" 1 14 in
  let h264 =
    bench "h264ref" ~body:(fun b i ->
        ignore (Gen_util.call ctx b h264_mc [ Reg i; Imm 0 ]);
        ignore (Gen_util.call ctx b h264_mc [ Reg i; Imm 1 ]);
        Some (Gen_util.call ctx b h264_mc [ Reg i; Imm 2 ]))
  in
  let xalanc =
    bench "xalancbmk" ~body:(fun b i ->
        ignore (icall_rotating ctx b ~slots:vslots ~i ~args:[ Reg i; Imm 0 ]);
        ignore (icall_rotating ctx b ~slots:vslots ~i ~args:[ Reg i; Imm 1 ]);
        Some (icall_rotating ctx b ~slots:vslots ~i ~args:[ Reg i; Imm 2 ]))
  in
  let benchmarks =
    List.map
      (fun (display, entry) -> (display, entry))
      [
        perlbench; bzip2; gcc; mcf; gobmk; hmmer; sjeng; libquantum; h264; xalanc;
      ]
  in
  Validate.check_exn ctx.Ctx.prog;
  {
    prog = ctx.Ctx.prog;
    benchmarks;
    micro_dcall;
    micro_icall;
    micro_vcall;
  }
