open Pibe_ir
open Types

type t = {
  schedule : string;
  do_fork : string;
  do_exit : string;
  do_execve : string;
  sig_install : string;
  sig_dispatch : string;
  user_handler_base_fptr : int;
}

let define ctx ~name ~params ~sub body =
  let b = Builder.create ~name ~params in
  body b;
  Ctx.add ctx (Builder.finish b ~attrs:{ default_attrs with subsystem = sub } ());
  name

let build_sched ctx (common : Common.t) (mm_sub : Mm.t) =
  let sub = "sched" in
  let mm = ctx.Ctx.mm in
  let class_names = [| "fair"; "rt"; "idle_class"; "dl" |] in
  Array.iteri
    (fun cls cname ->
      let pick_next =
        Gen_util.chain ctx
          ~name:(cname ^ "_pick_next")
          ~depth:2 ~compute:9 ~subsystem:sub ()
      in
      let put_prev =
        Gen_util.leaf ctx ~name:(cname ^ "_put_prev") ~params:2 ~compute:5 ~subsystem:sub
      in
      let enqueue =
        Gen_util.chain ctx ~name:(cname ^ "_enqueue") ~depth:1 ~compute:7 ~subsystem:sub ()
      in
      let dequeue =
        Gen_util.chain ctx ~name:(cname ^ "_dequeue") ~depth:1 ~compute:7 ~subsystem:sub ()
      in
      List.iteri
        (fun op name ->
          let idx = Ctx.register_fptr ctx name in
          Ctx.init_global ctx
            ~addr:(mm.Memmap.sched_ops + (cls * mm.Memmap.ops_per_sched) + op)
            ~value:idx)
        [ pick_next; put_prev; enqueue; dequeue ])
    class_names;
  let context_switch =
    define ctx ~name:"context_switch" ~params:2 ~sub (fun b ->
        let prev = Builder.param b 0 and next = Builder.param b 1 in
        let v = Gen_util.compute ctx b ~seeds:[ prev; next ] ~n:10 in
        (* Switching address spaces is a hypercall under
           para-virtualization. *)
        let addr = Builder.reg b in
        Builder.assign b addr (Const (mm_sub.Mm.pv_flush_tlb_slot + 2));
        let fp = Builder.reg b in
        Builder.assign b fp (Load (Reg addr));
        Builder.asm_icall b (Ctx.site ctx) ~fptr:(Reg fp);
        Builder.ret b (Some (Reg v)))
  in
  define ctx ~name:"schedule" ~params:2 ~sub (fun b ->
      let a0 = Builder.param b 0 and a1 = Builder.param b 1 in
      ignore (Gen_util.call ctx b common.Common.get_current [ Reg a0; Reg a0 ]);
      let mix = Builder.reg b in
      Builder.assign b mix (Binop (Xor, Reg a0, Reg a1));
      let cls = Builder.reg b in
      Builder.assign b cls (Binop (And, Reg mix, Imm 3));
      let scaled = Builder.reg b in
      Builder.assign b scaled (Binop (Mul, Reg cls, Imm ctx.Ctx.mm.Memmap.ops_per_sched));
      let slot = Builder.reg b in
      Builder.assign b slot (Binop (Add, Reg scaled, Imm ctx.Ctx.mm.Memmap.sched_ops));
      let picked = Gen_util.icall_mem ctx b ~table_addr:slot ~args:[ Reg a0; Reg a1 ] in
      let r = Gen_util.call ctx b context_switch [ Reg a0; Reg picked ] in
      Builder.ret b (Some (Reg r)))

let build_signals ctx (common : Common.t) =
  let sub = "signal" in
  let mm = ctx.Ctx.mm in
  (* Four userspace handlers; consecutive fptr indices. *)
  let handler_idx =
    List.init 4 (fun i ->
        let name =
          Gen_util.leaf ctx
            ~name:(Printf.sprintf "user_handler_%d" i)
            ~params:2 ~compute:6 ~subsystem:sub
        in
        Ctx.register_fptr ctx name)
  in
  let base = List.hd handler_idx in
  (* Default table contents: handler 0 everywhere. *)
  for s = 0 to mm.Memmap.n_sig - 1 do
    Ctx.init_global ctx ~addr:(mm.Memmap.sig_handlers + s) ~value:base
  done;
  let setup_frame =
    Gen_util.chain ctx ~name:"setup_sigframe" ~depth:2 ~compute:9 ~subsystem:sub
      ~extra_callees:[ common.Common.put_user ] ()
  in
  let sig_install =
    define ctx ~name:"do_sig_install" ~params:2 ~sub (fun b ->
        let signum = Builder.param b 0 and handler = Builder.param b 1 in
        ignore (Gen_util.call ctx b common.Common.security_check [ Reg signum; Reg handler ]);
        let v = Gen_util.compute ctx b ~seeds:[ signum; handler ] ~n:14 in
        let hsel = Builder.reg b in
        Builder.assign b hsel (Binop (And, Reg handler, Imm 3));
        let idx = Builder.reg b in
        Builder.assign b idx (Binop (Add, Reg hsel, Imm base));
        let smasked = Builder.reg b in
        Builder.assign b smasked (Binop (And, Reg signum, Imm (mm.Memmap.n_sig - 1)));
        let slot = Builder.reg b in
        Builder.assign b slot (Binop (Add, Reg smasked, Imm mm.Memmap.sig_handlers));
        Builder.store b ~addr:(Reg slot) ~value:(Reg idx);
        Builder.ret b (Some (Reg v)))
  in
  let sig_dispatch =
    define ctx ~name:"do_sig_dispatch" ~params:2 ~sub (fun b ->
        let signum = Builder.param b 0 and info = Builder.param b 1 in
        ignore (Gen_util.call ctx b setup_frame [ Reg signum; Reg info ]);
        let smasked = Builder.reg b in
        Builder.assign b smasked (Binop (And, Reg signum, Imm (mm.Memmap.n_sig - 1)));
        let slot = Builder.reg b in
        Builder.assign b slot (Binop (Add, Reg smasked, Imm mm.Memmap.sig_handlers));
        let r = Gen_util.icall_mem ctx b ~table_addr:slot ~args:[ Reg signum; Reg info ] in
        Builder.ret b (Some (Reg r)))
  in
  (sig_install, sig_dispatch, base)

let build ctx (common : Common.t) (block : Block.t) (fs : Fs.t) (mm_sub : Mm.t) =
  let schedule = build_sched ctx common mm_sub in
  let sig_install, sig_dispatch, user_handler_base_fptr = build_signals ctx common in
  let sub = "proc" in
  let copy_mm =
    Gen_util.chain ctx ~name:"copy_mm" ~depth:3 ~compute:14 ~subsystem:sub
      ~extra_callees:[ common.Common.kmalloc ] ()
  in
  let dup_fd = Gen_util.leaf ctx ~name:"dup_fd" ~params:2 ~compute:6 ~subsystem:sub in
  let copy_sighand =
    Gen_util.chain ctx ~name:"copy_sighand" ~depth:1 ~compute:8 ~subsystem:sub ()
  in
  let wake_up_new_task =
    Gen_util.chain ctx ~name:"wake_up_new_task" ~depth:2 ~compute:8 ~subsystem:sub ()
  in
  let load_elf =
    Gen_util.chain ctx ~name:"load_elf" ~depth:3 ~compute:18 ~subsystem:sub
      ~extra_callees:[ common.Common.get_user ] ()
  in
  let do_fork =
    define ctx ~name:"do_fork" ~params:2 ~sub (fun b ->
        let flags = Builder.param b 0 and sp = Builder.param b 1 in
        ignore (Gen_util.call ctx b common.Common.get_current [ Reg flags; Reg flags ]);
        ignore (Gen_util.call ctx b common.Common.kmalloc [ Reg flags; Reg flags ]);
        let v = Gen_util.compute ctx b ~seeds:[ flags; sp ] ~n:12 in
        ignore (Gen_util.call ctx b copy_mm [ Reg v; Reg sp ]);
        ignore
          (Gen_util.loop ctx b ~count:(Imm 8) ~body:(fun b i ->
               ignore (Gen_util.call ctx b dup_fd [ Reg i; Reg v ]);
               None));
        ignore (Gen_util.call ctx b copy_sighand [ Reg v; Reg flags ]);
        let r = Gen_util.call ctx b wake_up_new_task [ Reg v; Reg flags ] in
        Builder.ret b (Some (Reg r)))
  in
  let do_exit =
    define ctx ~name:"do_exit" ~params:2 ~sub (fun b ->
        let code = Builder.param b 0 and _unused = Builder.param b 1 in
        ignore
          (Gen_util.loop ctx b ~count:(Imm 4) ~body:(fun b i ->
               ignore (Gen_util.call ctx b common.Common.fput [ Reg i; Reg i ]);
               None));
        ignore (Gen_util.call ctx b common.Common.kfree [ Reg code; Reg code ]);
        let r = Gen_util.call ctx b schedule [ Reg code; Reg code ] in
        Builder.ret b (Some (Reg r)))
  in
  let do_execve =
    define ctx ~name:"do_execve" ~params:2 ~sub (fun b ->
        let path = Builder.param b 0 and argv = Builder.param b 1 in
        let f = Gen_util.call ctx b fs.Fs.do_filp_open [ Reg path; Reg path ] in
        (* module/binary signature verification hashes the image *)
        ignore (Gen_util.call ctx b block.Block.crypto_hash [ Reg f; Reg path ]);
        ignore (Gen_util.call ctx b load_elf [ Reg f; Reg argv ]);
        ignore
          (Gen_util.loop ctx b ~count:(Imm 3) ~body:(fun b i ->
               ignore (Gen_util.call ctx b "do_mmap" [ Reg i; Imm 4096 ]);
               None));
        let r = Gen_util.call ctx b copy_mm [ Reg f; Reg argv ] in
        Builder.ret b (Some (Reg r)))
  in
  {
    schedule;
    do_fork;
    do_exit;
    do_execve;
    sig_install;
    sig_dispatch;
    user_handler_base_fptr;
  }
