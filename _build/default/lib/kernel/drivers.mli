(** The cold bulk of the kernel: device drivers with ioctl jump tables,
    boot-only init code, opaque assembly stubs, and generic cold library
    code.  Almost none of it ever executes under the benchmark workloads —
    which is the point: it supplies the long cold tail of indirect
    branches that must still be hardened (paper Table 10's ~130k return
    sites vs. ~3k optimization candidates) and the handful of
    jump-table/asm sites that stay vulnerable (Table 11). *)

type t = {
  drv_dispatch : string;  (** indirect dispatch through a driver ops slot *)
  n_cold_functions : int;
}

val build : Ctx.t -> Common.t -> t
