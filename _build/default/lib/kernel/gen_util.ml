open Pibe_ir
open Types
module Rng = Pibe_util.Rng

let compute ctx b ~seeds ~n =
  let rng = Ctx.rng ctx in
  let mm = ctx.Ctx.mm in
  let first =
    match seeds with
    | r :: _ -> r
    | [] ->
      let r = Builder.reg b in
      Builder.assign b r (Const (Rng.int rng 1024));
      r
  in
  (* A sliding window of live values to draw operands from. *)
  let vals = ref (Array.of_list (first :: List.filteri (fun i _ -> i < 5) seeds)) in
  let pick () = !vals.(Rng.int rng (Array.length !vals)) in
  let push r =
    let arr = !vals in
    if Array.length arr < 6 then vals := Array.append arr [| r |]
    else begin
      arr.(Rng.int rng (Array.length arr)) <- r;
      vals := arr
    end
  in
  let scratch_addr v =
    let masked = Builder.reg b in
    Builder.assign b masked (Binop (And, Reg v, Imm (mm.Memmap.scratch_len - 1)));
    let addr = Builder.reg b in
    Builder.assign b addr (Binop (Add, Reg masked, Imm mm.Memmap.scratch));
    addr
  in
  let i = ref 0 in
  while !i < n do
    (match Rng.int rng 10 with
    | 0 | 1 | 2 ->
      (* scratch load: kernel code chases pointers, and loads can neither
         be folded nor hoisted by the cleanup pass *)
      let addr = scratch_addr (pick ()) in
      let r = Builder.reg b in
      Builder.assign b r (Load (Reg addr));
      push r;
      i := !i + 3
    | 3 ->
      (* scratch store *)
      let addr = scratch_addr (pick ()) in
      Builder.store b ~addr:(Reg addr) ~value:(Reg (pick ()));
      i := !i + 3
    | 4 when Rng.int rng 4 = 0 ->
      (* observable output, kept rare so traces stay compact *)
      Builder.observe b (Reg (pick ()));
      incr i
    | _ ->
      let op = Rng.choose rng [| Add; Sub; Mul; Xor; And; Or; Shl; Shr |] in
      let a = pick () in
      let snd = if Rng.bool rng then Reg (pick ()) else Imm (1 + Rng.int rng 63) in
      let r = Builder.reg b in
      Builder.assign b r (Binop (op, Reg a, snd));
      push r;
      incr i);
    ()
  done;
  (* Kernel code branches on its data constantly (error checks, flag
     tests); about a third of compute sequences end in a small
     data-dependent diamond, which populates the PHT and gives the
     Spectre-V1 scanner realistic material. *)
  if n >= 6 && Rng.int rng 3 = 0 then begin
    let c = Builder.reg b in
    Builder.assign b c (Binop (And, Reg (pick ()), Imm 1));
    let merged = Builder.reg b in
    let bt = Builder.new_block b in
    let bf = Builder.new_block b in
    let join = Builder.new_block b in
    Builder.br b (Reg c) bt bf;
    Builder.switch_to b bt;
    Builder.assign b merged (Binop (Add, Reg (pick ()), Imm (1 + Rng.int rng 31)));
    Builder.jmp b join;
    Builder.switch_to b bf;
    Builder.assign b merged (Binop (Xor, Reg (pick ()), Imm (1 + Rng.int rng 31)));
    Builder.jmp b join;
    Builder.switch_to b join;
    push merged
  end;
  (* Fold the whole live window into the result so the sequence carries
     real dataflow: kernel code is not dead code, and the cleanup pass
     must not be able to strip it. *)
  let acc = ref !vals.(0) in
  Array.iteri
    (fun idx v ->
      if idx > 0 then begin
        let r = Builder.reg b in
        Builder.assign b r (Binop (Xor, Reg !acc, Reg v));
        acc := r
      end)
    !vals;
  !acc

let loop ctx b ~count ~body =
  ignore ctx;
  let i = Builder.reg b in
  Builder.assign b i (Const 0);
  let header = Builder.new_block b in
  let body_l = Builder.new_block b in
  let exit_l = Builder.new_block b in
  Builder.jmp b header;
  Builder.switch_to b header;
  let c = Builder.reg b in
  Builder.assign b c (Binop (Lt, Reg i, count));
  Builder.br b (Reg c) body_l exit_l;
  Builder.switch_to b body_l;
  let acc = body b i in
  Builder.assign b i (Binop (Add, Reg i, Imm 1));
  Builder.jmp b header;
  Builder.switch_to b exit_l;
  acc

let call ctx b callee args =
  let dst = Builder.reg b in
  Builder.call b ~dst (Ctx.site ctx) callee args;
  dst

let icall_mem ctx b ~table_addr ~args =
  let fp = Builder.reg b in
  Builder.assign b fp (Load (Reg table_addr));
  let dst = Builder.reg b in
  Builder.icall b ~dst (Ctx.site ctx) args ~fptr:(Reg fp);
  dst

let jitter ctx n =
  if n <= 2 then n
  else
    let spread = max 1 (n / 3) in
    n - spread + Rng.int (Ctx.rng ctx) (2 * spread)

(* Most kernel helpers commit state (locks, counters, object fields), so
   their work stays live even when the caller ignores the return value —
   otherwise post-inline dead-code elimination would strip whole bodies,
   which real code does not allow.  A sixth stay pure (and legitimately
   DCE-able when their result is unused). *)
let commit_result ctx b r =
  if Rng.int (Ctx.rng ctx) 6 < 5 then begin
    let mm = ctx.Ctx.mm in
    let masked = Builder.reg b in
    Builder.assign b masked (Binop (And, Reg r, Imm (mm.Memmap.scratch_len - 1)));
    let addr = Builder.reg b in
    Builder.assign b addr (Binop (Add, Reg masked, Imm mm.Memmap.scratch));
    Builder.store b ~addr:(Reg addr) ~value:(Reg r)
  end

let leaf ctx ~name ~params ~compute:n ~subsystem =
  let b = Builder.create ~name ~params in
  let seeds = List.init params (fun i -> Builder.param b i) in
  let r = compute ctx b ~seeds ~n:(jitter ctx n) in
  commit_result ctx b r;
  Builder.ret b (Some (Reg r));
  Ctx.add ctx (Builder.finish b ~attrs:{ default_attrs with subsystem } ());
  name

let chain ctx ~name ~depth ~compute:n ~subsystem ?(extra_callees = []) () =
  let rng = Ctx.rng ctx in
  let level_name i = Printf.sprintf "%s__%d" name i in
  (* Build bottom-up so callees exist when callers reference them. *)
  let leaf_name =
    leaf ctx
      ~name:(if depth = 0 then name else level_name 0)
      ~params:2 ~compute:n ~subsystem
  in
  let rec build i prev =
    if i > depth then prev
    else begin
      let fname = if i = depth then name else level_name i in
      let b = Builder.create ~name:fname ~params:2 in
      let a0 = Builder.param b 0 and a1 = Builder.param b 1 in
      let v = compute ctx b ~seeds:[ a0; a1 ] ~n:(jitter ctx n) in
      (if extra_callees <> [] && Rng.int rng 3 = 0 then
         let callee = Rng.choose rng (Array.of_list extra_callees) in
         ignore (call ctx b callee [ Reg v; Reg a1 ]));
      let sub = call ctx b prev [ Reg v; Reg a0 ] in
      let out = Builder.reg b in
      Builder.assign b out (Binop (Xor, Reg sub, Reg v));
      commit_result ctx b out;
      Builder.ret b (Some (Reg out));
      Ctx.add ctx (Builder.finish b ~attrs:{ default_attrs with subsystem } ());
      build (i + 1) fname
    end
  in
  if depth = 0 then leaf_name else build 1 leaf_name
