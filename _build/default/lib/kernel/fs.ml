open Pibe_ir
open Types

type t = {
  vfs_read : string;
  vfs_write : string;
  do_filp_open : string;
  vfs_stat : string;
  vfs_fstat : string;
  vfs_poll : string;
  vfs_fsync : string;
  fs_names : string array;
  victim_icall_site : int;
  victim_ops_addr : int;
}

let sub = "vfs"

let define ctx ~name ~params body =
  let b = Builder.create ~name ~params in
  body b;
  Ctx.add ctx (Builder.finish b ~attrs:{ default_attrs with subsystem = sub } ());
  name

let register_op ctx ~fs ~op name =
  let idx = Ctx.register_fptr ctx name in
  Ctx.init_global ctx ~addr:(Memmap.vfs_op_addr ctx.Ctx.mm ~fs ~op) ~value:idx

(* Emit: slot register holding the address of ops[fs_of_fd][op]. *)
let fs_ops_slot ctx b ~fd ~op =
  let mm = ctx.Ctx.mm in
  let fd_addr = Builder.reg b in
  Builder.assign b fd_addr (Binop (Add, Reg fd, Imm mm.Memmap.fd_table));
  let fs = Builder.reg b in
  Builder.assign b fs (Load (Reg fd_addr));
  let scaled = Builder.reg b in
  Builder.assign b scaled (Binop (Mul, Reg fs, Imm mm.Memmap.ops_per_fs));
  let slot = Builder.reg b in
  Builder.assign b slot (Binop (Add, Reg scaled, Imm (mm.Memmap.vfs_ops + op)));
  slot

let build_disk_fs ctx (common : Common.t) (block : Block.t) ~fs ~fsname ~depth =
  let chain n d compute extra =
    Gen_util.chain ctx ~name:(fsname ^ "_" ^ n) ~depth:d ~compute ~subsystem:sub
      ~extra_callees:extra ()
  in
  (* checksumming filesystems hash data on the read/write path *)
  let integrity = if String.equal fsname "btrfs" then [ block.Block.crypto_hash ] else [] in
  let read =
    chain "read" depth 10
      ([ common.Common.memcpy_small; common.Common.put_user ] @ integrity)
  in
  let write =
    chain "write" depth 10
      ([ common.Common.memcpy_small; common.Common.get_user ] @ integrity)
  in
  let open_ = chain "open" (max 2 (depth - 1)) 9 [ common.Common.kmalloc ] in
  let stat = chain "stat" 2 8 [ common.Common.put_user ] in
  let poll = Gen_util.leaf ctx ~name:(fsname ^ "_poll") ~params:2 ~compute:4 ~subsystem:sub in
  let mmap = chain "mmap" 2 9 [] in
  (* fsync: write back dirty pages through the block layer, then barrier *)
  let writeback = chain "writeback" 2 9 [ common.Common.mutex_lock ] in
  let fsync =
    define ctx ~name:(fsname ^ "_fsync") ~params:2 (fun b ->
        let fd = Builder.param b 0 and how = Builder.param b 1 in
        let v = Gen_util.compute ctx b ~seeds:[ fd; how ] ~n:8 in
        ignore (Gen_util.call ctx b writeback [ Reg v; Reg fd ]);
        ignore (Gen_util.call ctx b block.Block.submit_bio [ Reg fd; Reg v ]);
        let r = Gen_util.call ctx b block.Block.blk_flush [ Reg fd; Reg how ] in
        Builder.ret b (Some (Reg r)))
  in
  let release = chain "release" 1 6 [ common.Common.kfree ] in
  register_op ctx ~fs ~op:Memmap.op_read read;
  register_op ctx ~fs ~op:Memmap.op_write write;
  register_op ctx ~fs ~op:Memmap.op_open open_;
  register_op ctx ~fs ~op:Memmap.op_stat stat;
  register_op ctx ~fs ~op:Memmap.op_poll poll;
  register_op ctx ~fs ~op:Memmap.op_mmap mmap;
  register_op ctx ~fs ~op:Memmap.op_fsync fsync;
  register_op ctx ~fs ~op:Memmap.op_release release

let build_pipefs ctx (common : Common.t) ~fs =
  let rw name =
    define ctx ~name ~params:2 (fun b ->
        let fd = Builder.param b 0 and len = Builder.param b 1 in
        ignore (Gen_util.call ctx b common.Common.mutex_lock [ Reg fd; Reg fd ]);
        let v = Gen_util.compute ctx b ~seeds:[ fd; len ] ~n:12 in
        ignore (Gen_util.call ctx b common.Common.memcpy_small [ Reg v; Reg len ]);
        ignore (Gen_util.call ctx b common.Common.mutex_unlock [ Reg fd; Reg fd ]);
        Builder.ret b (Some (Reg v)))
  in
  let read = rw "pipe_read" in
  let write = rw "pipe_write" in
  let poll = Gen_util.leaf ctx ~name:"pipe_poll" ~params:2 ~compute:3 ~subsystem:sub in
  let open_ =
    Gen_util.chain ctx ~name:"pipe_open" ~depth:2 ~compute:8 ~subsystem:sub
      ~extra_callees:[ common.Common.kmalloc ] ()
  in
  let stat = Gen_util.leaf ctx ~name:"pipe_stat" ~params:2 ~compute:6 ~subsystem:sub in
  let nope = Gen_util.leaf ctx ~name:"pipe_no_op" ~params:2 ~compute:2 ~subsystem:sub in
  let release =
    Gen_util.chain ctx ~name:"pipe_release" ~depth:1 ~compute:5 ~subsystem:sub
      ~extra_callees:[ common.Common.kfree ] ()
  in
  register_op ctx ~fs ~op:Memmap.op_read read;
  register_op ctx ~fs ~op:Memmap.op_write write;
  register_op ctx ~fs ~op:Memmap.op_open open_;
  register_op ctx ~fs ~op:Memmap.op_stat stat;
  register_op ctx ~fs ~op:Memmap.op_poll poll;
  register_op ctx ~fs ~op:Memmap.op_mmap nope;
  register_op ctx ~fs ~op:Memmap.op_fsync nope;
  register_op ctx ~fs ~op:Memmap.op_release release

let build_sockfs ctx (net : Net.t) ~fs =
  let nope = Gen_util.leaf ctx ~name:"sockfs_no_op" ~params:2 ~compute:2 ~subsystem:sub in
  register_op ctx ~fs ~op:Memmap.op_read net.Net.sockfs_read;
  register_op ctx ~fs ~op:Memmap.op_write net.Net.sockfs_write;
  register_op ctx ~fs ~op:Memmap.op_open nope;
  register_op ctx ~fs ~op:Memmap.op_stat nope;
  register_op ctx ~fs ~op:Memmap.op_poll net.Net.sockfs_poll;
  register_op ctx ~fs ~op:Memmap.op_mmap nope;
  register_op ctx ~fs ~op:Memmap.op_fsync nope;
  register_op ctx ~fs ~op:Memmap.op_release nope

let build ctx (common : Common.t) (block : Block.t) (net : Net.t) =
  let fs_names =
    [| "ext4"; "xfs"; "btrfs"; "tmpfs"; "procfs"; "devfs"; "pipefs"; "sockfs" |]
  in
  let depths = [| 4; 3; 4; 2; 2; 2 |] in
  Array.iteri
    (fun fs fsname ->
      if fs < 6 then build_disk_fs ctx common block ~fs ~fsname ~depth:depths.(fs))
    fs_names;
  build_pipefs ctx common ~fs:6;
  build_sockfs ctx net ~fs:7;
  let readahead =
    Gen_util.chain ctx ~name:"generic_readahead" ~depth:2 ~compute:12 ~subsystem:sub ()
  in
  let error_path =
    Gen_util.chain ctx ~name:"vfs_error_path" ~depth:2 ~compute:12 ~subsystem:sub ()
  in
  let component =
    Gen_util.leaf ctx ~name:"link_path_walk_component" ~params:2 ~compute:8 ~subsystem:sub
  in
  (* dcache lookup: a hash-dispatch function whose static InlineCost
     exceeds Rule 3's threshold while the common (hash-hit) case is a few
     cycles; only some buckets fall through to the allocation chain.
     This is the hot oversized callee the lax-heuristics configuration
     re-enables (paper section 8.3). *)
  let dcache_miss =
    Gen_util.chain ctx ~name:"dcache_miss" ~depth:2 ~compute:8 ~subsystem:sub
      ~extra_callees:[ common.Common.kmalloc ] ()
  in
  let dcache_lookup =
    define ctx ~name:"dcache_lookup" ~params:2 (fun b ->
        let key = Builder.param b 0 and depth_arg = Builder.param b 1 in
        let h = Builder.reg b in
        Builder.assign b h (Binop (And, Reg key, Imm 31));
        let cases = List.init 32 (fun _ -> Builder.new_block b) in
        let join = Builder.new_block b in
        let out = Builder.reg b in
        Builder.switch b ~lowering:Jump_table (Reg h)
          (List.mapi (fun i l -> (i, l)) cases)
          ~default:join;
        List.iteri
          (fun j l ->
            Builder.switch_to b l;
            if j < 24 then begin
              let r = Gen_util.compute ctx b ~seeds:[ key; depth_arg ] ~n:25 in
              Builder.assign b out (Move (Reg r))
            end
            else begin
              let r = Gen_util.call ctx b dcache_miss [ Reg key; Reg depth_arg ] in
              Builder.assign b out (Move (Reg r))
            end;
            Builder.jmp b join)
          cases;
        Builder.switch_to b join;
        Builder.ret b (Some (Reg out)))
  in
  let get_unused_fd =
    Gen_util.leaf ctx ~name:"get_unused_fd" ~params:2 ~compute:5 ~subsystem:sub
  in
  let alloc_file =
    Gen_util.chain ctx ~name:"alloc_file" ~depth:2 ~compute:8 ~subsystem:sub
      ~extra_callees:[ common.Common.kmalloc ] ()
  in
  (* --- generic vfs entry paths --- *)
  let victim_site = ref (-1) in
  let vfs_rw ~name ~op ~capture ~cold =
    define ctx ~name ~params:2 (fun b ->
        let fd = Builder.param b 0 and len = Builder.param b 1 in
        ignore (Gen_util.call ctx b common.Common.fdget [ Reg fd; Reg fd ]);
        ignore (Gen_util.call ctx b common.Common.security_check [ Reg fd; Reg len ]);
        (* Rare slow path: ~1/128 of calls. *)
        let masked = Builder.reg b in
        Builder.assign b masked (Binop (And, Reg len, Imm 127));
        let is_zero = Builder.reg b in
        Builder.assign b is_zero (Binop (Eq, Reg masked, Imm 0));
        let slow = Builder.new_block b in
        let fast = Builder.new_block b in
        Builder.br b (Reg is_zero) slow fast;
        Builder.switch_to b slow;
        ignore (Gen_util.call ctx b cold [ Reg fd; Reg len ]);
        Builder.jmp b fast;
        Builder.switch_to b fast;
        let slot = fs_ops_slot ctx b ~fd ~op in
        let fp = Builder.reg b in
        Builder.assign b fp (Load (Reg slot));
        let dst = Builder.reg b in
        let site = Ctx.site ctx in
        if capture then victim_site := site.site_id;
        Builder.icall b ~dst site [ Reg fd; Reg len ] ~fptr:(Reg fp);
        (* uaccess copy-out: a quarter of transfers take the bulk
           size-class copy whose InlineCost exceeds Rule 3's threshold. *)
        let umask = Builder.reg b in
        Builder.assign b umask (Binop (And, Reg len, Imm 3));
        let uz = Builder.reg b in
        Builder.assign b uz (Binop (Eq, Reg umask, Imm 0));
        let bulk = Builder.new_block b in
        let small_copy = Builder.new_block b in
        let out = Builder.new_block b in
        Builder.br b (Reg uz) bulk small_copy;
        Builder.switch_to b bulk;
        ignore (Gen_util.call ctx b common.Common.copy_user_big [ Reg dst; Reg len ]);
        Builder.jmp b out;
        Builder.switch_to b small_copy;
        ignore (Gen_util.call ctx b common.Common.put_user [ Reg dst; Reg len ]);
        Builder.jmp b out;
        Builder.switch_to b out;
        ignore (Gen_util.call ctx b common.Common.fput [ Reg fd; Reg fd ]);
        Builder.ret b (Some (Reg dst)))
  in
  let vfs_read = vfs_rw ~name:"vfs_read" ~op:Memmap.op_read ~capture:true ~cold:readahead in
  let vfs_write =
    vfs_rw ~name:"vfs_write" ~op:Memmap.op_write ~capture:false ~cold:error_path
  in
  let do_filp_open =
    define ctx ~name:"do_filp_open" ~params:2 (fun b ->
        let path = Builder.param b 0 and flags = Builder.param b 1 in
        ignore (Gen_util.call ctx b common.Common.security_check [ Reg path; Reg flags ]);
        ignore (Gen_util.call ctx b common.Common.audit_hook [ Reg path; Reg path ]);
        let ncomp_raw = Builder.reg b in
        Builder.assign b ncomp_raw (Binop (And, Reg path, Imm 7));
        let ncomp = Builder.reg b in
        Builder.assign b ncomp (Binop (Add, Reg ncomp_raw, Imm 3));
        ignore
          (Gen_util.loop ctx b ~count:(Reg ncomp) ~body:(fun b i ->
               let c = Gen_util.call ctx b component [ Reg path; Reg i ] in
               ignore (Gen_util.call ctx b dcache_lookup [ Reg c; Reg i ]);
               ignore (Gen_util.call ctx b common.Common.security_check [ Reg c; Reg i ]);
               None));
        ignore (Gen_util.call ctx b alloc_file [ Reg path; Reg flags ]);
        let mount = Builder.reg b in
        Builder.assign b mount (Binop (And, Reg path, Imm 63));
        let slot = fs_ops_slot ctx b ~fd:mount ~op:Memmap.op_open in
        let r = Gen_util.icall_mem ctx b ~table_addr:slot ~args:[ Reg path; Reg flags ] in
        ignore (Gen_util.call ctx b get_unused_fd [ Reg r; Reg r ]);
        ignore (Gen_util.call ctx b common.Common.audit_hook [ Reg r; Reg r ]);
        Builder.ret b (Some (Reg r)))
  in
  let vfs_stat =
    define ctx ~name:"vfs_stat" ~params:2 (fun b ->
        let path = Builder.param b 0 and buf = Builder.param b 1 in
        ignore (Gen_util.call ctx b common.Common.security_check [ Reg path; Reg buf ]);
        let ncomp_raw = Builder.reg b in
        Builder.assign b ncomp_raw (Binop (And, Reg path, Imm 3));
        let ncomp = Builder.reg b in
        Builder.assign b ncomp (Binop (Add, Reg ncomp_raw, Imm 2));
        ignore
          (Gen_util.loop ctx b ~count:(Reg ncomp) ~body:(fun b i ->
               let c = Gen_util.call ctx b component [ Reg path; Reg i ] in
               ignore (Gen_util.call ctx b dcache_lookup [ Reg c; Reg i ]);
               None));
        let mount = Builder.reg b in
        Builder.assign b mount (Binop (And, Reg path, Imm 63));
        let slot = fs_ops_slot ctx b ~fd:mount ~op:Memmap.op_stat in
        let r = Gen_util.icall_mem ctx b ~table_addr:slot ~args:[ Reg path; Reg buf ] in
        ignore (Gen_util.call ctx b common.Common.put_user [ Reg r; Reg buf ]);
        Builder.ret b (Some (Reg r)))
  in
  let vfs_fstat =
    define ctx ~name:"vfs_fstat" ~params:2 (fun b ->
        let fd = Builder.param b 0 and buf = Builder.param b 1 in
        ignore (Gen_util.call ctx b common.Common.fdget [ Reg fd; Reg fd ]);
        let v = Gen_util.compute ctx b ~seeds:[ fd; buf ] ~n:10 in
        let slot = fs_ops_slot ctx b ~fd ~op:Memmap.op_stat in
        let r = Gen_util.icall_mem ctx b ~table_addr:slot ~args:[ Reg fd; Reg v ] in
        ignore (Gen_util.call ctx b common.Common.fput [ Reg fd; Reg fd ]);
        Builder.ret b (Some (Reg r)))
  in
  let vfs_poll =
    define ctx ~name:"vfs_poll" ~params:2 (fun b ->
        let fd = Builder.param b 0 and mask = Builder.param b 1 in
        let slot = fs_ops_slot ctx b ~fd ~op:Memmap.op_poll in
        let r = Gen_util.icall_mem ctx b ~table_addr:slot ~args:[ Reg fd; Reg mask ] in
        Builder.ret b (Some (Reg r)))
  in
  let vfs_fsync =
    define ctx ~name:"vfs_fsync" ~params:2 (fun b ->
        let fd = Builder.param b 0 and how = Builder.param b 1 in
        ignore (Gen_util.call ctx b common.Common.fdget [ Reg fd; Reg fd ]);
        let slot = fs_ops_slot ctx b ~fd ~op:Memmap.op_fsync in
        let r = Gen_util.icall_mem ctx b ~table_addr:slot ~args:[ Reg fd; Reg how ] in
        ignore (Gen_util.call ctx b common.Common.fput [ Reg fd; Reg fd ]);
        Builder.ret b (Some (Reg r)))
  in
  {
    vfs_read;
    vfs_write;
    do_filp_open;
    vfs_stat;
    vfs_fstat;
    vfs_poll;
    vfs_fsync;
    fs_names;
    victim_icall_site = !victim_site;
    victim_ops_addr = Memmap.vfs_op_addr ctx.Ctx.mm ~fs:0 ~op:Memmap.op_read;
  }
