(** Hot utility functions shared across kernel subsystems — the heavily
    reused leaves (locking, uaccess, allocation, LSM hooks) whose call
    edges dominate any kernel profile.  [copy_user_big] is deliberately
    over the Rule-3 callee threshold, giving the inliner a hot callee it
    must refuse (paper Table 9). *)

type t = {
  security_check : string;
  fdget : string;
  fput : string;
  get_user : string;
  put_user : string;
  kmalloc : string;
  kfree : string;
  memcpy_small : string;
  copy_user_big : string;  (** InlineCost > 3,000: blocked by Rule 3 *)
  mutex_lock : string;
  mutex_unlock : string;
  audit_hook : string;
  get_current : string;
}

val build : Ctx.t -> t
