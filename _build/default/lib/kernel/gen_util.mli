(** Builder-level helpers shared by the subsystem generators: jittered
    compute sequences over scratch memory, counted loops, leaf functions
    and call chains.  Everything draws from the context's RNG, so a given
    (seed, scale) yields one fixed kernel. *)

open Pibe_ir

val compute :
  Ctx.t -> Builder.t -> seeds:Types.reg list -> n:int -> Types.reg
(** Emits roughly [n] instructions (arithmetic, scratch loads/stores, the
    occasional [observe]) mixing the seed registers, and returns the
    register holding the final value. *)

val loop :
  Ctx.t ->
  Builder.t ->
  count:Types.operand ->
  body:(Builder.t -> Types.reg -> Types.reg option) ->
  Types.reg option
(** Counted loop [for i = 0 .. count-1]; [body] receives the induction
    register and may return an accumulator register whose last value is
    returned.  On exit the builder's insertion point is the loop's exit
    block. *)

val call : Ctx.t -> Builder.t -> string -> Types.operand list -> Types.reg
(** Emits a direct call with a fresh site; returns the destination
    register. *)

val icall_mem :
  Ctx.t -> Builder.t -> table_addr:Types.reg -> args:Types.operand list -> Types.reg
(** Loads a function-pointer index from [table_addr] and emits an
    indirect call through it; returns the destination register. *)

val leaf :
  Ctx.t -> name:string -> params:int -> compute:int -> subsystem:string -> string
(** A leaf function: compute over its arguments, return a value. *)

val chain :
  Ctx.t ->
  name:string ->
  depth:int ->
  compute:int ->
  subsystem:string ->
  ?extra_callees:string list ->
  unit ->
  string
(** A call chain of [depth + 1] functions ([name__0] the leaf); each level
    does [compute (+/- jitter)] work, calls the next level, and with
    probability 1/3 also calls one of [extra_callees].  Returns the top
    function's name. *)
