open Pibe_ir
open Types

type t = {
  submit_bio : string;
  blk_flush : string;
  crypto_hash : string;
}

let sub = "block"

let define ctx ~name ~params body =
  let b = Builder.create ~name ~params in
  body b;
  Ctx.add ctx (Builder.finish b ~attrs:{ default_attrs with subsystem = sub } ());
  name

let build_schedulers ctx (common : Common.t) =
  let mm = ctx.Ctx.mm in
  List.iteri
    (fun sched sname ->
      let submit =
        Gen_util.chain ctx ~name:(sname ^ "_submit") ~depth:2 ~compute:9 ~subsystem:sub
          ~extra_callees:[ common.Common.kmalloc ] ()
      in
      let complete =
        Gen_util.chain ctx ~name:(sname ^ "_complete") ~depth:1 ~compute:7 ~subsystem:sub ()
      in
      let merge =
        Gen_util.leaf ctx ~name:(sname ^ "_merge") ~params:2 ~compute:6 ~subsystem:sub
      in
      let flush =
        Gen_util.chain ctx ~name:(sname ^ "_flush") ~depth:1 ~compute:8 ~subsystem:sub
          ~extra_callees:[ common.Common.mutex_lock ] ()
      in
      List.iteri
        (fun op name ->
          let idx = Ctx.register_fptr ctx name in
          Ctx.init_global ctx ~addr:(Memmap.blk_op_addr mm ~sched ~op) ~value:idx)
        [ submit; complete; merge; flush ])
    [ "noop"; "deadline"; "cfq" ]

let build_crypto ctx =
  let mm = ctx.Ctx.mm in
  List.iteri
    (fun alg aname ->
      List.iteri
        (fun op opname ->
          let name =
            Gen_util.leaf ctx
              ~name:(Printf.sprintf "%s_%s" aname opname)
              ~params:2
              ~compute:(10 + (4 * op))
              ~subsystem:"crypto"
          in
          let idx = Ctx.register_fptr ctx name in
          Ctx.init_global ctx ~addr:(Memmap.crypto_op_addr mm ~alg ~op) ~value:idx)
        [ "init"; "update"; "final" ])
    [ "crc32c"; "sha256"; "xxhash"; "blake2" ]

(* slot = table + (sel mod n) * ops + op, emitted as mask-safe arithmetic *)
let table_icall ctx b ~table ~per ~count ~sel ~op ~args =
  let m = Builder.reg b in
  Builder.assign b m (Binop (And, sel, Imm (count - 1)));
  let scaled = Builder.reg b in
  Builder.assign b scaled (Binop (Mul, Reg m, Imm per));
  let slot = Builder.reg b in
  Builder.assign b slot (Binop (Add, Reg scaled, Imm (table + op)));
  Gen_util.icall_mem ctx b ~table_addr:slot ~args

let build ctx (common : Common.t) =
  let mm = ctx.Ctx.mm in
  build_schedulers ctx common;
  build_crypto ctx;
  let plug = Gen_util.leaf ctx ~name:"blk_plug" ~params:2 ~compute:5 ~subsystem:sub in
  let submit_bio =
    define ctx ~name:"submit_bio" ~params:2 (fun b ->
        let dev = Builder.param b 0 and len = Builder.param b 1 in
        ignore (Gen_util.call ctx b plug [ Reg dev; Reg len ]);
        (* (dev & 3) can be 3 with only 3 schedulers; fold it in range *)
        let m = Builder.reg b in
        Builder.assign b m (Binop (And, Reg dev, Imm 1));
        let r =
          table_icall ctx b ~table:mm.Memmap.blk_ops ~per:mm.Memmap.ops_per_blk ~count:2
            ~sel:(Reg m) ~op:0 ~args:[ Reg dev; Reg len ]
        in
        ignore r;
        let c =
          table_icall ctx b ~table:mm.Memmap.blk_ops ~per:mm.Memmap.ops_per_blk ~count:2
            ~sel:(Reg m) ~op:1 ~args:[ Reg dev; Reg len ]
        in
        Builder.ret b (Some (Reg c)))
  in
  let blk_flush =
    define ctx ~name:"blk_flush" ~params:2 (fun b ->
        let dev = Builder.param b 0 and how = Builder.param b 1 in
        let m = Builder.reg b in
        Builder.assign b m (Binop (And, Reg dev, Imm 1));
        let r =
          table_icall ctx b ~table:mm.Memmap.blk_ops ~per:mm.Memmap.ops_per_blk ~count:2
            ~sel:(Reg m) ~op:3 ~args:[ Reg dev; Reg how ]
        in
        Builder.ret b (Some (Reg r)))
  in
  let crypto_hash =
    define ctx ~name:"crypto_hash" ~params:2 (fun b ->
        let buf = Builder.param b 0 and len = Builder.param b 1 in
        (* alg chosen by the caller's context; update then final *)
        let u =
          table_icall ctx b ~table:mm.Memmap.crypto_ops ~per:mm.Memmap.ops_per_crypto
            ~count:mm.Memmap.n_crypto ~sel:(Reg len) ~op:1 ~args:[ Reg buf; Reg len ]
        in
        let f =
          table_icall ctx b ~table:mm.Memmap.crypto_ops ~per:mm.Memmap.ops_per_crypto
            ~count:mm.Memmap.n_crypto ~sel:(Reg len) ~op:2 ~args:[ Reg u; Reg len ]
        in
        Builder.ret b (Some (Reg f)))
  in
  { submit_bio; blk_flush; crypto_hash }
