(** The networking subsystem: per-protocol operation implementations
    (tcp/udp/unix/raw) registered in the socket ops tables, and the
    generic [sock_*] layer that dispatches through them.  Socket I/O is
    the double-indirect-dispatch path (fd -> sockfs -> proto ops) that
    makes select/tcp workloads so retpoline-sensitive in the paper
    (Table 3's select_tcp row). *)

type t = {
  sock_sendmsg : string;
  sock_recvmsg : string;
  sock_poll : string;
  sock_connect : string;
  sock_accept : string;
  sockfs_read : string;  (** vfs-level read on a socket fd *)
  sockfs_write : string;
  sockfs_poll : string;
  proto_names : string array;
}

val build : Ctx.t -> Common.t -> t
