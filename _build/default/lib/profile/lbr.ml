type record = {
  from_addr : int;
  to_addr : int;
}

type t = {
  ring : record array;
  depth : int;
  drain : record -> unit;
  mutable fill : int;
  mutable total : int;
}

let dummy = { from_addr = 0; to_addr = 0 }

let create ?(depth = 32) ~drain () =
  if depth <= 0 then invalid_arg "Lbr.create: depth must be positive";
  { ring = Array.make depth dummy; depth; drain; fill = 0; total = 0 }

let flush t =
  for i = 0 to t.fill - 1 do
    t.drain t.ring.(i);
    t.total <- t.total + 1
  done;
  t.fill <- 0

let record t ~from_addr ~to_addr =
  if t.fill >= t.depth then flush t;
  t.ring.(t.fill) <- { from_addr; to_addr };
  t.fill <- t.fill + 1

let drained t = t.total
