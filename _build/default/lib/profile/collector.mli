(** The profiling-phase plumbing: engine edge events -> binary addresses ->
    LBR ring -> address-pair aggregation -> lifted {!Profile.t}.

    Mirrors the paper's §7 flow: the profiling binary records edges at the
    *binary* level; after the run, the aggregated address pairs are lifted
    back to IR call-site identities through the layout symbol table. *)

type t

val create : Pibe_ir.Program.t -> t
(** Builds the layout symbol table for the profiling image and an empty
    aggregation. *)

val hook : t -> Pibe_cpu.Engine.edge_event -> unit
(** Install as the engine's [on_edge] callback. *)

val lift : t -> Profile.t
(** Flushes the LBR ring, then lifts every aggregated (from, to) pair:
    [from] resolves to a call site (direct counter or value-profile entry
    depending on the site's instruction) and [to] to the entered function
    (invocation counts).  Address pairs that no longer resolve — e.g. the
    site was compiled away — are dropped, as in the paper. *)

val raw_pairs : t -> ((int * int) * int) list
(** Aggregated ((from_addr, to_addr), count) pairs, for inspection. *)
