open Pibe_ir

type t = {
  prog : Program.t;
  layout : Layout.t;
  pairs : (int * int, int) Hashtbl.t;
  lbr : Lbr.t;
  (* site kind map, built once: origin id -> is the site a direct call? *)
  site_is_direct : (int, bool) Hashtbl.t;
}

let create prog =
  let layout = Layout.build prog in
  let pairs = Hashtbl.create 4096 in
  let drain (r : Lbr.record) =
    let key = (r.Lbr.from_addr, r.Lbr.to_addr) in
    Hashtbl.replace pairs key (1 + Option.value ~default:0 (Hashtbl.find_opt pairs key))
  in
  let site_is_direct = Hashtbl.create 1024 in
  Program.iter_funcs prog (fun f ->
      Func.iter_insts f (fun _ i ->
          match i with
          | Types.Call { site; _ } -> Hashtbl.replace site_is_direct site.Types.site_id true
          | Types.Icall { site; _ } | Types.Asm_icall { site; _ } ->
            Hashtbl.replace site_is_direct site.Types.site_id false
          | Types.Assign _ | Types.Store _ | Types.Observe _ -> ()));
  { prog; layout; pairs; lbr = Lbr.create ~drain (); site_is_direct }

let hook t (e : Pibe_cpu.Engine.edge_event) =
  (* The profiling run observes addresses, as LBR hardware would. *)
  match
    ( Layout.site_addr t.layout e.Pibe_cpu.Engine.site.Types.site_id,
      Layout.func_addr t.layout e.Pibe_cpu.Engine.callee )
  with
  | from_addr, to_addr -> Lbr.record t.lbr ~from_addr ~to_addr
  | exception Not_found -> ()

let lift t =
  Lbr.flush t.lbr;
  let profile = Profile.create () in
  Hashtbl.iter
    (fun (from_addr, to_addr) count ->
      match Layout.site_at t.layout from_addr with
      | None -> () (* stale address: site no longer exists *)
      | Some site_id -> (
        match Layout.func_at t.layout to_addr with
        | None -> ()
        | Some target ->
          Profile.add_entry profile ~func:target ~count;
          (match Hashtbl.find_opt t.site_is_direct site_id with
          | Some true -> Profile.add_direct profile ~origin:site_id ~count
          | Some false -> Profile.add_indirect profile ~origin:site_id ~target ~count
          | None -> ())))
    t.pairs;
  profile

let raw_pairs t =
  Lbr.flush t.lbr;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.pairs [])
