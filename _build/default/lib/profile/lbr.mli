(** Simulated Last Branch Record facility.

    Modern Intel CPUs expose the last N taken branches as (from, to)
    address pairs in a small ring; a PMU handler drains the ring
    periodically.  The collector feeds every call edge through this ring
    so the aggregation sees exactly what a hardware profiler would:
    address pairs, no IR identities. *)

type record = {
  from_addr : int;
  to_addr : int;
}

type t

val create : ?depth:int -> drain:(record -> unit) -> unit -> t
(** [depth] defaults to 32, matching Skylake's LBR depth.  [drain] is the
    PMU-handler callback invoked for each record when the ring fills (and
    on [flush]). *)

val record : t -> from_addr:int -> to_addr:int -> unit
val flush : t -> unit
(** Drains any buffered records (end of the profiling run). *)

val drained : t -> int
(** Total records handed to [drain] so far. *)
