lib/profile/profile.mli: Pibe_ir
