lib/profile/collector.ml: Func Hashtbl Layout Lbr List Option Pibe_cpu Pibe_ir Profile Program Types
