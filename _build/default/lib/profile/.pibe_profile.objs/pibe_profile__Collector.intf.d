lib/profile/collector.mli: Pibe_cpu Pibe_ir Profile
