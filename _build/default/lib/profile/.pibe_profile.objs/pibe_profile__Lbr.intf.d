lib/profile/lbr.mli:
