lib/profile/profile.ml: Buffer Hashtbl List Option Pibe_ir Printf String
