lib/profile/lbr.ml: Array
