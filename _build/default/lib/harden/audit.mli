(** Static security audit of a hardened image (paper §8.6, Table 11).

    Counts every forward and backward edge in the final binary and
    classifies it as protected or vulnerable under the image's defense
    set: indirect calls converted to the requested thunk, inline-assembly
    indirect calls that no pass may touch (the para-virt layer), indirect
    jumps left by jump tables, and return instructions. *)

type report = {
  defended_icalls : int;  (** converted to the configured thunk *)
  vulnerable_icalls : int;  (** unprotected indirect calls (asm or missed) *)
  asm_icalls : int;  (** the subset that is untouchable inline assembly *)
  vulnerable_ijumps : int;  (** jump-table indirect jumps still present *)
  defended_rets : int;
  vulnerable_rets : int;  (** returns left bare *)
  boot_only_rets : int;  (** subset of vulnerable returns that only run at boot *)
  asm_rets : int;  (** subset of vulnerable returns inside assembly bodies *)
}

val run : Pass.image -> report

val fully_protected : report -> against:Pass.defenses -> bool
(** True when no attack enabled in [against] has a remaining non-asm
    surface: no vulnerable non-boot returns when backward defenses are on,
    etc.  Asm sites are reported but tolerated, as in the paper. *)
