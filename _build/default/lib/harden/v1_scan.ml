open Pibe_ir
open Types

type gadget = {
  gadget_func : string;
  branch_block : label;
  load_block : label;
}

type report = {
  gadgets : gadget list;
  conditional_branches : int;
  functions_scanned : int;
}

(* ------------------------------------------------------------------ *)
(* Taint: parameters are attacker-influenced; propagation through       *)
(* arithmetic and loads-from-tainted-addresses; call results are        *)
(* treated as sanitized.  A whole-function fixpoint is sound here       *)
(* because registers are function-scoped.                               *)
(* ------------------------------------------------------------------ *)

let taint_of f =
  let tainted = Array.make (max f.nregs 1) false in
  for i = 0 to f.params - 1 do
    tainted.(i) <- true
  done;
  let operand_tainted = function
    | Imm _ -> false
    | Reg r -> tainted.(r)
  in
  let expr_tainted = function
    | Const _ -> false
    | Move o -> operand_tainted o
    | Binop (_, a, b) -> operand_tainted a || operand_tainted b
    | Load a -> operand_tainted a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Func.iter_insts f (fun _ i ->
        match i with
        | Assign (d, e) ->
          if expr_tainted e && not tainted.(d) then begin
            tainted.(d) <- true;
            changed := true
          end
        | Store _ | Observe _ | Call _ | Icall _ | Asm_icall _ -> ())
  done;
  tainted

(* A block transmits if it loads from a tainted address and then uses the
   loaded value as (part of) another load's address — the dependent
   double-fetch that encodes a secret into the cache. *)
let block_transmits f tainted l =
  let b = Func.block f l in
  let secret = Array.make (max f.nregs 1) false in
  let operand_secret = function
    | Imm _ -> false
    | Reg r -> secret.(r)
  in
  let operand_tainted = function
    | Imm _ -> false
    | Reg r -> tainted.(r)
  in
  let found = ref false in
  Array.iter
    (fun i ->
      match i with
      | Assign (d, Load a) ->
        if operand_secret a then found := true;
        secret.(d) <- operand_tainted a || operand_secret a
      | Assign (d, Move o) -> secret.(d) <- operand_secret o
      | Assign (d, Binop (_, a, b)) -> secret.(d) <- operand_secret a || operand_secret b
      | Assign (d, Const _) -> secret.(d) <- false
      | Call { dst = Some d; _ } | Icall { dst = Some d; _ } -> secret.(d) <- false
      | Call { dst = None; _ } | Icall { dst = None; _ } | Asm_icall _ | Store _
      | Observe _ -> ())
    b.insts;
  !found

let scan_func f =
  if f.attrs.is_asm then []
  else begin
    let tainted = taint_of f in
    let gadgets = ref [] in
    Array.iteri
      (fun l b ->
        match b.term with
        | Br (Reg c, l1, l2) when tainted.(c) ->
          (* either arm may be the predicted-in-bounds path *)
          List.iter
            (fun target ->
              if block_transmits f tainted target then
                gadgets :=
                  { gadget_func = f.fname; branch_block = l; load_block = target }
                  :: !gadgets)
            (List.sort_uniq compare [ l1; l2 ])
        | Br _ | Jmp _ | Switch _ | Ret _ -> ())
      f.blocks;
    List.rev !gadgets
  end

let scan prog =
  let gadgets = ref [] in
  let branches = ref 0 in
  let funcs = ref 0 in
  Program.iter_funcs prog (fun f ->
      incr funcs;
      Func.iter_terms f (fun _ t ->
          match t with Br _ -> incr branches | Jmp _ | Switch _ | Ret _ -> ());
      gadgets := List.rev_append (scan_func f) !gadgets);
  { gadgets = List.rev !gadgets; conditional_branches = !branches; functions_scanned = !funcs }
