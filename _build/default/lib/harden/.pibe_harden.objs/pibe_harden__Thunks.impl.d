lib/harden/thunks.ml: Pibe_ir Protection String
