lib/harden/thunks.mli: Pibe_ir Protection
