lib/harden/pass.mli: Hashtbl Pibe_cpu Pibe_ir Program Protection Types
