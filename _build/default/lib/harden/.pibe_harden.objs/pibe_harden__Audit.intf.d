lib/harden/audit.mli: Pass
