lib/harden/pass.ml: Func Hashtbl Layout List Option Pibe_cpu Pibe_ir Program Protection Thunks Types
