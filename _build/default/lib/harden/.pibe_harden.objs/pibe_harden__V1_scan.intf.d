lib/harden/v1_scan.mli: Pibe_ir
