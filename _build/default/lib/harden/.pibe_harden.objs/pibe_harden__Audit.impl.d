lib/harden/audit.ml: Func List Pass Pibe_ir Program Protection Types
