lib/harden/v1_scan.ml: Array Func List Pibe_ir Program Types
