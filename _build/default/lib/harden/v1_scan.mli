(** Static Spectre-V1 gadget scanner.

    PIBE's threat model excludes V1 because "static analysis already
    provides a practical solution for the kernel" (paper §3, citing the
    smatch-based scanner).  This module supplies that missing piece: a
    conservative intra-procedural taint analysis that flags the paper's
    Listing-3 shape — a conditional branch on attacker-influenced data
    guarding a dependent double load:

    {v
      if (index < size) {      // bounds check on tainted index
        ptr = data[index];     // load at tainted address
        value = *ptr;          // dependent second load => cache transmit
      }
    v}

    Function parameters are the taint sources (syscall arguments); call
    results are treated as sanitized.  Findings are candidates for an
    LFENCE or index-masking fix, as in the kernel's [array_index_nospec]. *)

type gadget = {
  gadget_func : string;
  branch_block : Pibe_ir.Types.label;  (** block ending in the tainted bounds check *)
  load_block : Pibe_ir.Types.label;  (** block containing the dependent loads *)
}

val scan_func : Pibe_ir.Types.func -> gadget list

type report = {
  gadgets : gadget list;
  conditional_branches : int;  (** total [Br] terminators scanned *)
  functions_scanned : int;
}

val scan : Pibe_ir.Program.t -> report
(** Whole-program scan (skips [is_asm] bodies, which the paper also
    excludes from automatic instrumentation). *)
