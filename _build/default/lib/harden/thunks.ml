open Pibe_ir

let shared_thunk_bytes = function
  | Protection.F_none -> 0
  | Protection.F_retpoline -> 32 (* __llvm_retpoline_r11 *)
  | Protection.F_lvi -> 16 (* __x86_indirect_thunk_r11 with lfence *)
  | Protection.F_fenced_retpoline -> 48 (* retpoline + notq/notq/lfence tail *)

let per_icall_bytes = function
  | Protection.F_none -> 0
  | Protection.F_retpoline | Protection.F_lvi | Protection.F_fenced_retpoline ->
    5 (* mov %target,%r11 (3) + call thunk (5) replaces call *reg (3) *)

let per_ret_bytes = function
  | Protection.B_none -> 0
  | Protection.B_lvi -> 3 (* lfence *)
  | Protection.B_ret_retpoline -> 14 (* inlined call/pause/lfence/loop + stack fix *)
  | Protection.B_fenced_ret_retpoline -> 19

let listing = function
  | `Retpoline ->
    String.concat "\n"
      [
        "  call __llvm_retpoline_r11";
        "__llvm_retpoline_r11:";
        "  callq jump";
        "loop: pause";
        "  lfence";
        "  jmp loop";
        "  nopl 0x0(%rax)";
        "jump: mov %r11, (%rsp)";
        "  retq";
      ]
  | `Lvi_forward ->
    String.concat "\n"
      [
        "  call __x86_indirect_thunk_r11";
        "__x86_indirect_thunk_r11:";
        "  lfence";
        "  jmpq *%r11";
      ]
  | `Lvi_backward -> String.concat "\n" [ "  pop %rcx"; "  lfence"; "  jmpq *%rcx" ]
  | `Fenced_retpoline ->
    String.concat "\n"
      [
        "  call __llvm_retpoline_r11";
        "__llvm_retpoline_r11:";
        "  callq jump";
        "loop: pause";
        "  lfence";
        "  jmp loop";
        "  nopl 0x0(%rax)";
        "jump: mov %r11, (%rsp)";
        "  notq (%rsp)";
        "  notq (%rsp)";
        "  lfence";
        "  retq";
      ]
