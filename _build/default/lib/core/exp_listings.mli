(** Paper Listings 4-7: the defense code sequences, as emitted by the
    thunk layer. *)

val render : unit -> string
