(** Paper Table 2: the two baselines — LTO (vanilla) absolute latencies
    and the PIBE PGO baseline (optimizations on, defenses off) with its
    overhead relative to LTO; geometric mean last. *)

val run : Env.t -> Pibe_util.Tbl.t
