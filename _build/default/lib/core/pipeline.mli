(** The two-phase PIBE pipeline (paper §4).

    Phase 1 runs a profiling image of the program under a representative
    workload, collecting edge counts at the binary level and lifting them
    back to IR identities.  Phase 2 copies the lifted profile, runs the
    configured optimization passes (ICP first, then the inliner — each
    validated), and hardens every remaining indirect branch. *)

open Pibe_ir

type built = {
  image : Pibe_harden.Pass.image;
  config : Config.t;
  icp_stats : Pibe_opt.Icp.stats option;
  inline_stats : Pibe_opt.Inliner.stats option;
  llvm_inline_stats : Pibe_opt.Llvm_inliner.stats option;
  post_icp_profile : Pibe_profile.Profile.t;
      (** the profile as mutated by ICP (promoted sites are direct now) *)
}

val profile :
  Program.t -> run:(Pibe_cpu.Engine.t -> unit) -> Pibe_profile.Profile.t
(** Phase 1: build the profiling engine (edge hook -> LBR -> collector),
    run the workload, lift. *)

val copy_profile : Pibe_profile.Profile.t -> Pibe_profile.Profile.t

val optimize :
  Program.t ->
  Pibe_profile.Profile.t ->
  Config.opt_level ->
  Program.t
  * Pibe_opt.Icp.stats option
  * Pibe_opt.Inliner.stats option
  * Pibe_opt.Llvm_inliner.stats option
  * Pibe_profile.Profile.t
(** Phase 2a.  The input profile is copied, never mutated. *)

val build : Program.t -> Pibe_profile.Profile.t -> Config.t -> built
(** Phase 2: optimize then harden; the result validates. *)

val engine : ?base:Pibe_cpu.Engine.config -> built -> Pibe_cpu.Engine.t
(** A fresh machine running this image. *)
