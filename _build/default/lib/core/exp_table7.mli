(** Paper Table 7: macro-benchmark throughput (Nginx, Apache, DBench)
    under each transient defense, with and without PIBE's optimizations,
    relative to the LTO baseline.

    Substitution note: the paper measures wall-clock requests/sec on real
    servers whose request handling is mostly userspace.  We simulate one
    application request as its syscall mix and add a fixed userspace
    cycle cost per request (the mix's [user_ratio], calibrated to the
    paper's kernel-time fractions); throughput is requests per million
    simulated cycles. *)

val run : Env.t -> Pibe_util.Tbl.t
