(** Artifact-style reproduction report (paper appendix A.6).

    The original artifact's [generate_tables.sh] renders a
    [reproduced.pdf] that shows, per section, the results obtained on the
    test machine next to the numbers published in the paper.  This module
    does the same as markdown: it runs the headline experiments against an
    environment and emits each measured table beside the corresponding
    published figures (embedded here as reference data), with a one-line
    verdict on whether the paper's trend reproduces. *)

val paper_table6 : (string * float * float) list
(** Published Table 6 rows: (defense, LTO %, PIBE %). *)

val paper_table5_geomeans : (string * float) list
(** Published Table 5 geometric means per optimization level. *)

val paper_table3_geomeans : (string * float) list
(** Published Table 3 geometric means per configuration. *)

val paper_macro_all_defenses : (string * float * float) list
(** Published Table 7 all-defenses rows: (benchmark, no-opt %, PIBE %). *)

val generate : Env.t -> string
(** The full markdown report. *)

val write_file : Env.t -> path:string -> unit
