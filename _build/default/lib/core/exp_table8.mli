(** Paper Table 8: indirect-branch gadgets eliminated by PIBE per budget —
    promoted weight / call sites / call targets, and inlined (return)
    weight / sites, with the absolute totals. *)

val run : Env.t -> Pibe_util.Tbl.t
