open Pibe_ir
open Types
module Tbl = Pibe_util.Tbl
module Inl = Pibe_opt.Inliner
module Profile = Pibe_profile.Profile

(* A leaf whose InlineCost is [5 * (insts + 1)] (body + ret). *)
let leaf prog ~name ~insts =
  let b = Builder.create ~name ~params:2 in
  let a = Builder.param b 0 in
  let acc = ref a in
  for _ = 1 to insts do
    let r = Builder.reg b in
    Builder.assign b r (Binop (Add, Reg !acc, Imm 1));
    acc := r
  done;
  Builder.ret b (Some (Reg !acc));
  Program.add_func prog (Builder.finish b ())

let build_scenario () =
  let prog = Program.with_globals_size Program.empty 8 in
  (* Costs: foo_1 ~ 11,800; foo_2 = 300; foo_3 = 200. *)
  let prog = leaf prog ~name:"foo_1" ~insts:2358 in
  let prog = leaf prog ~name:"foo_2" ~insts:59 in
  let prog = leaf prog ~name:"foo_3" ~insts:39 in
  let prog, s1 = Program.fresh_site prog in
  let prog, s2 = Program.fresh_site prog in
  let prog, s3 = Program.fresh_site prog in
  let b = Builder.create ~name:"bar" ~params:2 in
  let a = Builder.param b 0 in
  let r1 = Builder.reg b and r2 = Builder.reg b and r3 = Builder.reg b in
  Builder.call b ~dst:r1 s1 "foo_1" [ Reg a; Imm 0 ];
  Builder.call b ~dst:r2 s2 "foo_2" [ Reg r1; Imm 0 ];
  Builder.call b ~dst:r3 s3 "foo_3" [ Reg r2; Imm 0 ];
  Builder.ret b (Some (Reg r3));
  let prog = Program.add_func prog (Builder.finish b ()) in
  Validate.check_exn prog;
  let profile = Profile.create () in
  Profile.add_direct profile ~origin:s1.site_id ~count:1000;
  Profile.add_direct profile ~origin:s2.site_id ~count:500;
  Profile.add_direct profile ~origin:s3.site_id ~count:500;
  Profile.add_entry profile ~func:"bar" ~count:500;
  Profile.add_entry profile ~func:"foo_1" ~count:1000;
  Profile.add_entry profile ~func:"foo_2" ~count:500;
  Profile.add_entry profile ~func:"foo_3" ~count:500;
  (prog, profile)

let run_inliner ~rule3 =
  let prog, profile = build_scenario () in
  let config =
    {
      Inl.budget_pct = 100.0;
      rule2_threshold = Pibe_opt.Inline_cost.rule2_default;
      rule3_threshold = rule3;
      lax_within_pct = None;
    }
  in
  let prog', stats = Inl.run prog profile config in
  let bar_cost = Pibe_opt.Inline_cost.func_cost (Program.find prog' "bar") in
  (stats, bar_cost)

let run _env =
  let t =
    Tbl.create ~title:"Figure 1: why Rule 3 exists (bar / foo_1 / foo_2 / foo_3)"
      ~columns:
        [ "inliner"; "sites inlined"; "weight elided"; "blocked r2"; "blocked r3"; "bar cost" ]
  in
  let without_r3, bar1 = run_inliner ~rule3:max_int in
  let with_r3, bar2 = run_inliner ~rule3:Pibe_opt.Inline_cost.rule3_default in
  let row label (s : Inl.stats) bar_cost =
    Tbl.add_row t
      [
        Tbl.Str label;
        Tbl.Int s.Inl.inlined_sites;
        Tbl.Int s.Inl.inlined_weight;
        Tbl.Int s.Inl.blocked_rule2_weight;
        Tbl.Int s.Inl.blocked_rule3_weight;
        Tbl.Int bar_cost;
      ]
  in
  row "rules 1-2 only (greedy)" without_r3 bar1;
  row "rules 1-3 (PIBE)" with_r3 bar2;
  t
