(** Paper Table 6: LMBench geometric-mean overhead per defense, without
    optimization (LTO) and under PIBE's best configuration for that
    defense. *)

val run : Env.t -> Pibe_util.Tbl.t
