(** Paper Table 1: per-branch overhead of each mitigation in clock ticks
    (dcall / icall / vcall with empty callees and unpredictable targets)
    and the geometric-mean slowdown on the SPEC-CPU2006-shaped suite. *)

val run : Env.t -> Pibe_util.Tbl.t
