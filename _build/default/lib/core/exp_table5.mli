(** Paper Table 5: all transient defenses enabled, across optimization
    configurations — no optimization, ICP only, ICP+inlining at three
    budgets, and the lax-heuristics configuration; overheads vs the LTO
    baseline with geometric means. *)

val run : Env.t -> Pibe_util.Tbl.t
