(** A perf-style flat profiler over the simulated machine.

    Cycle deltas between consecutive enter/exit events are attributed to
    the function on top of the (shadow) call stack, giving exclusive
    ("self") cycles per function; inclusive cycles come from the
    enter-to-exit spans.  Use it to see *where the defense tax lands* —
    e.g. how many cycles vfs_read's retpoline dispatch costs before and
    after promotion. *)

type row = {
  func : string;
  self_cycles : int;  (** cycles attributed while this function was on top *)
  inclusive_cycles : int;  (** cycles between entry and matching return *)
  calls : int;  (** activations *)
}

type t

val profile :
  Pibe_cpu.Engine.config ->
  Pibe_ir.Program.t ->
  run:(Pibe_cpu.Engine.t -> unit) ->
  t
(** Runs the workload with profiling hooks layered onto [config]. *)

val rows : t -> row list
(** All functions, heaviest self-cycles first. *)

val top : ?n:int -> t -> row list
(** The [n] (default 15) heaviest functions. *)

val total_cycles : t -> int

val to_table : ?n:int -> t -> Pibe_util.Tbl.t
(** A rendered report: rank, function, self/inclusive cycles, calls and
    the self share of total time. *)
