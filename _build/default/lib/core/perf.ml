module Engine = Pibe_cpu.Engine
module Tbl = Pibe_util.Tbl

type row = {
  func : string;
  self_cycles : int;
  inclusive_cycles : int;
  calls : int;
}

type acc = {
  mutable self : int;
  mutable inclusive : int;
  mutable calls : int;
}

type t = {
  table : (string, acc) Hashtbl.t;
  mutable total : int;
}

let acc_of t name =
  match Hashtbl.find_opt t.table name with
  | Some a -> a
  | None ->
    let a = { self = 0; inclusive = 0; calls = 0 } in
    Hashtbl.replace t.table name a;
    a

let profile config prog ~run =
  let t = { table = Hashtbl.create 256; total = 0 } in
  (* The engine is created after the hooks close over this ref. *)
  let engine_ref = ref None in
  let cycles () =
    match !engine_ref with
    | Some e -> Engine.cycles e
    | None -> 0
  in
  (* shadow stack of (function, cycles at entry); the delta since the last
     event is charged to the function that was running *)
  let stack = ref [] in
  let last_stamp = ref 0 in
  let charge_running now =
    (match !stack with
    | (running, _) :: _ ->
      (acc_of t running).self <- (acc_of t running).self + (now - !last_stamp)
    | [] ->
      (* the top-level entry function is not announced through on_edge *)
      let a = acc_of t "[entry]" in
      a.self <- a.self + (now - !last_stamp));
    last_stamp := now
  in
  let on_edge (e : Engine.edge_event) =
    let now = cycles () in
    charge_running now;
    let a = acc_of t e.Engine.callee in
    a.calls <- a.calls + 1;
    stack := (e.Engine.callee, now) :: !stack
  in
  let on_exit fname =
    let now = cycles () in
    charge_running now;
    match !stack with
    | (top, entered) :: rest when String.equal top fname ->
      (acc_of t top).inclusive <- (acc_of t top).inclusive + (now - entered);
      stack := rest
    | _ ->
      (* top-level entries are not announced through on_edge; ignore the
         unmatched exit *)
      ()
  in
  let config = { config with Engine.on_edge = Some on_edge; on_exit = Some on_exit } in
  let engine = Engine.create ~config prog in
  engine_ref := Some engine;
  run engine;
  t.total <- cycles ();
  t

let rows t =
  let all =
    Hashtbl.fold
      (fun func a acc ->
        { func; self_cycles = a.self; inclusive_cycles = a.inclusive; calls = a.calls }
        :: acc)
      t.table []
  in
  List.sort
    (fun a b ->
      if a.self_cycles <> b.self_cycles then compare b.self_cycles a.self_cycles
      else String.compare a.func b.func)
    all

let top ?(n = 15) t = List.filteri (fun i _ -> i < n) (rows t)
let total_cycles t = t.total

let to_table ?(n = 15) t =
  let tbl =
    Tbl.create ~title:"flat profile (self cycles, heaviest first)"
      ~columns:[ "#"; "function"; "self"; "self %"; "inclusive"; "calls" ]
  in
  List.iteri
    (fun i r ->
      Tbl.add_row tbl
        [
          Tbl.Int (i + 1);
          Tbl.Str r.func;
          Tbl.Int r.self_cycles;
          Exp_common.pct
            (Pibe_util.Stats.ratio_pct ~num:r.self_cycles ~den:(max 1 t.total));
          Tbl.Int r.inclusive_cycles;
          Tbl.Int r.calls;
        ])
    (top ~n t);
  tbl
