lib/core/exp_table10.ml: Env Exp_common List Option Pibe_ir Pibe_kernel Pibe_opt Pibe_util Pipeline Printf
