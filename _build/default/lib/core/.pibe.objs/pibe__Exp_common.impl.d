lib/core/exp_common.ml: Config Pibe_harden Pibe_util
