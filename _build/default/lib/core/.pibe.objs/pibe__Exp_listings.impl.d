lib/core/exp_listings.ml: List Pibe_harden Printf String
