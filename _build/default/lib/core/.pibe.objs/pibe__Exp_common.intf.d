lib/core/exp_common.mli: Config Pibe_harden Pibe_util
