lib/core/exp_ablation.ml: Config Env Exp_common List Measure Pibe_cpu Pibe_harden Pibe_ir Pibe_kernel Pibe_opt Pibe_profile Pibe_util Pipeline
