lib/core/report.ml: Buffer Config Env Exp_common List Measure Pibe_cpu Pibe_harden Pibe_jumpswitch Pibe_kernel Pibe_util Pipeline Printf String
