lib/core/exp_table7.ml: Config Env Exp_common List Measure Pibe_kernel Pibe_util Pipeline
