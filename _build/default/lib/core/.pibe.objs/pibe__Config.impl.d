lib/core/config.ml: Pibe_harden Printf
