lib/core/exp_table12.mli: Env Pibe_util
