lib/core/exp_table2.ml: Config Env Exp_common List Pibe_util Printf
