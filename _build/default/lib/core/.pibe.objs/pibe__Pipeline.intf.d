lib/core/pipeline.mli: Config Pibe_cpu Pibe_harden Pibe_ir Pibe_opt Pibe_profile Program
