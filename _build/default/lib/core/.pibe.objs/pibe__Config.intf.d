lib/core/config.mli: Pibe_harden
