lib/core/exp_table7.mli: Env Pibe_util
