lib/core/env.mli: Config Measure Pibe_kernel Pibe_profile Pipeline
