lib/core/perf.ml: Exp_common Hashtbl List Pibe_cpu Pibe_util String
