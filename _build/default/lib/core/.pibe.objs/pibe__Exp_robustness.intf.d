lib/core/exp_robustness.mli: Env Pibe_util
