lib/core/exp_table1.mli: Env Pibe_util
