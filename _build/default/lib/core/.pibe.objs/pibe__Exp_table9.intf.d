lib/core/exp_table9.mli: Env Pibe_util
