lib/core/exp_table3.mli: Env Pibe_util
