lib/core/exp_table3.ml: Array Config Env Exp_common List Measure Pibe_cpu Pibe_harden Pibe_jumpswitch Pibe_kernel Pibe_util Pipeline
