lib/core/exp_robustness.ml: Config Env Exp_common Hashtbl List Measure Pibe_ir Pibe_kernel Pibe_opt Pibe_profile Pibe_util Pipeline
