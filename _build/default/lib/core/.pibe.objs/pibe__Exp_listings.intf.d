lib/core/exp_listings.mli:
