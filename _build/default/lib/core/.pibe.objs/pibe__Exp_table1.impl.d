lib/core/exp_table1.ml: Exp_common Float List Measure Pibe_cpu Pibe_harden Pibe_kernel Pibe_util
