lib/core/exp_userspace.ml: Config Exp_common List Pibe_cpu Pibe_harden Pibe_kernel Pibe_util Pipeline
