lib/core/exp_sensitivity.ml: Config Env Exp_common List Pibe_util Printf
