lib/core/report.mli: Env
