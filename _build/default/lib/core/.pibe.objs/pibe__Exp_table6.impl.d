lib/core/exp_table6.ml: Config Env Exp_common List Pibe_harden Pibe_util
