lib/core/exp_v1.mli: Env Pibe_util
