lib/core/exp_table6.mli: Env Pibe_util
