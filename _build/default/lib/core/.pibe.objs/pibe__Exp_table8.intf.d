lib/core/exp_table8.mli: Env Pibe_util
