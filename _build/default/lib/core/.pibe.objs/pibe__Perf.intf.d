lib/core/perf.mli: Pibe_cpu Pibe_ir Pibe_util
