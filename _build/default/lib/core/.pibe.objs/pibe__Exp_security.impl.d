lib/core/exp_security.ml: Env Exp_common List Option Pibe_cpu Pibe_harden Pibe_ir Pibe_kernel Pibe_util Pipeline
