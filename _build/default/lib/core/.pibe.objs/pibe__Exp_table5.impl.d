lib/core/exp_table5.ml: Config Env Exp_common List Pibe_util
