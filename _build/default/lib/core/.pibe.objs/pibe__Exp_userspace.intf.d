lib/core/exp_userspace.mli: Env Pibe_util
