lib/core/exp_v1.ml: Env Exp_common List Pibe_harden Pibe_kernel Pibe_util Printf
