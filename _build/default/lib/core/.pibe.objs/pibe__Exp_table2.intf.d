lib/core/exp_table2.mli: Env Pibe_util
