lib/core/exp_table5.mli: Env Pibe_util
