lib/core/exp_ablation.mli: Env Pibe_util
