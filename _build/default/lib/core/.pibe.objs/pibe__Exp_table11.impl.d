lib/core/exp_table11.ml: Env Exp_common List Pibe_harden Pibe_util Pipeline
