lib/core/env.ml: Config Hashtbl List Measure Pibe_kernel Pibe_profile Pibe_util Pipeline String
