lib/core/exp_figure1.ml: Builder Pibe_ir Pibe_opt Pibe_profile Pibe_util Program Types Validate
