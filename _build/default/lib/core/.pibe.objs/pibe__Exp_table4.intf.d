lib/core/exp_table4.mli: Env Pibe_util
