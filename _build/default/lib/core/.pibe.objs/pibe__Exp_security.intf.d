lib/core/exp_security.mli: Env Pibe_util
