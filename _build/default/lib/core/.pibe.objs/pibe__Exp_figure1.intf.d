lib/core/exp_figure1.mli: Env Pibe_util
