lib/core/exp_table10.mli: Env Pibe_util
