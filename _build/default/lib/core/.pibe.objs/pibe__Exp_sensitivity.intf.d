lib/core/exp_sensitivity.mli: Env Pibe_util
