lib/core/measure.ml: List Pibe_cpu Pibe_kernel Pibe_util
