lib/core/exp_table8.ml: Env Exp_common List Option Pibe_opt Pibe_util Pipeline Printf
