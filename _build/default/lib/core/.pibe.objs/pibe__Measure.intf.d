lib/core/measure.mli: Pibe_cpu Pibe_kernel
