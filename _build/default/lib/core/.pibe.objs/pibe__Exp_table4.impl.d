lib/core/exp_table4.ml: Array Env List Pibe_profile Pibe_util Printf
