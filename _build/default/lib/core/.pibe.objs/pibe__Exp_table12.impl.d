lib/core/exp_table12.ml: Config Env Exp_common List Pibe_cpu Pibe_harden Pibe_kernel Pibe_util Pipeline Printf
