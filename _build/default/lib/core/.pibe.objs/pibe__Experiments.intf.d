lib/core/experiments.mli: Env Pibe_util
