lib/core/exp_table11.mli: Env Pibe_util
