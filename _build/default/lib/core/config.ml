type opt_level =
  | No_opt
  | Icp_only of { budget : float }
  | Full of {
      icp_budget : float;
      inline_budget : float;
      lax : bool;
    }
  | Llvm_pgo of {
      icp_budget : float;
      inline_budget : float;
    }

type t = {
  defenses : Pibe_harden.Pass.defenses;
  opt : opt_level;
}

let lto = { defenses = Pibe_harden.Pass.no_defenses; opt = No_opt }

let pibe_baseline =
  {
    defenses = Pibe_harden.Pass.no_defenses;
    opt = Full { icp_budget = 99.999; inline_budget = 99.9999; lax = true };
  }

let with_defenses t defenses = { t with defenses }

let opt_name = function
  | No_opt -> "no-opt"
  | Icp_only { budget } -> Printf.sprintf "icp(%g%%)" budget
  | Full { icp_budget; inline_budget; lax } ->
    Printf.sprintf "icp(%g%%)+inlining(%g%%)%s" icp_budget inline_budget
      (if lax then "+lax" else "")
  | Llvm_pgo { icp_budget; inline_budget } ->
    Printf.sprintf "icp(%g%%)+llvm-inliner(%g%%)" icp_budget inline_budget

let name t =
  Printf.sprintf "%s %s" (Pibe_harden.Pass.defenses_name t.defenses) (opt_name t.opt)
