(** Registry of every reproduced paper artifact (DESIGN.md §3).

    Each experiment renders one or more titled tables; [run_all] executes
    them in paper order against one shared environment. *)

type t = {
  id : string;  (** "table1" ... "table12", "figure1", "robustness", ... *)
  paper_ref : string;  (** e.g. "Table 5" *)
  description : string;
  run : Env.t -> Pibe_util.Tbl.t list;
}

val all : t list
val find : string -> t option
val run_all : Env.t -> (t * Pibe_util.Tbl.t list) list
val listings : unit -> string
(** The paper's defense-sequence listings (not a table). *)
