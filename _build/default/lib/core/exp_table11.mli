(** Paper Table 11: forward edges protected vs vulnerable under all
    defenses, across optimization budgets — protected indirect calls grow
    with inlining (duplication), the untouchable assembly (para-virt)
    calls stay vulnerable, and disabling jump tables leaves only the
    assembly indirect jumps. *)

val run : Env.t -> Pibe_util.Tbl.t
