(** Memoized experiment environment.

    Every experiment (one per paper table/figure) draws from the same
    generated kernel, the same profiling runs, and a cache of built
    images and measured latency suites, so running all experiments in one
    process does each expensive step once. *)

type t

val create :
  ?scale:int ->
  ?seed:int ->
  ?settings:Measure.settings ->
  ?profile_iters:int ->
  unit ->
  t
(** Defaults: scale 3, seed 42, [Measure.default_settings], 300 profiling
    iterations per micro-op. *)

val quick : unit -> t
(** Small and fast, for unit tests: scale 1, quick settings, 60 profiling
    iterations. *)

val info : t -> Pibe_kernel.Gen.info
val ops : t -> Pibe_kernel.Workload.op list
val settings : t -> Measure.settings

val lmbench_profile : t -> Pibe_profile.Profile.t
(** Phase-1 profile over the full LMBench suite (the paper's default
    training workload). *)

val apache_profile : t -> Pibe_profile.Profile.t
(** Training profile from the ApacheBench-style workload (§8.4). *)

val build : t -> Config.t -> Pipeline.built
(** Cached optimize+harden for a configuration (LMBench profile). *)

val build_with_profile :
  t -> profile:Pibe_profile.Profile.t -> Config.t -> Pipeline.built
(** Uncached variant for alternate training profiles. *)

val latencies : t -> Config.t -> (string * float) list
(** Cached LMBench latency suite on the configuration's image. *)

val overheads : t -> baseline:Config.t -> Config.t -> (string * float) list
(** Per-op overhead (%) of a configuration against a baseline
    configuration. *)

val geomean_overhead : t -> baseline:Config.t -> Config.t -> float
