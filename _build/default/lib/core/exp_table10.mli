(** Paper Table 10: initial promotion/inlining candidates as a fraction of
    all kernel indirect branches — showing the algorithms touch only a
    small sliver of the binary. *)

val run : Env.t -> Pibe_util.Tbl.t
