(** Paper Table 3: retpoline overhead vs the LTO baseline — unoptimized
    retpolines, the JumpSwitches runtime comparator, and PIBE's static
    indirect call promotion at 99% / 99.999% budgets — on the
    retpoline-sensitive LMBench subset. *)

val run : Env.t -> Pibe_util.Tbl.t
