module Tbl = Pibe_util.Tbl
module Audit = Pibe_harden.Audit

let configurations =
  let d = Exp_common.all_defenses in
  [
    ("no optimization", Exp_common.lto_with d);
    ("99% budget", Exp_common.full_opt ~icp:99.0 ~inline:99.0 d);
    ("99.9% budget", Exp_common.full_opt ~icp:99.9 ~inline:99.9 d);
    ("99.9999% budget", Exp_common.full_opt ~icp:99.9999 ~inline:99.9999 d);
  ]

let run env =
  let t =
    Tbl.create ~title:"Table 11: forward edges protected/vulnerable (all defenses)"
      ~columns:("statistic" :: List.map fst configurations)
  in
  let reports =
    List.map (fun (_, c) -> Audit.run (Env.build env c).Pipeline.image) configurations
  in
  let row label f = Tbl.add_row t (Tbl.Str label :: List.map (fun r -> Tbl.Int (f r)) reports) in
  row "Def. ICalls" (fun r -> r.Audit.defended_icalls);
  row "Vuln. ICalls" (fun r -> r.Audit.vulnerable_icalls);
  row "Vuln. IJumps" (fun r -> r.Audit.vulnerable_ijumps);
  row "Def. Returns" (fun r -> r.Audit.defended_rets);
  row "Vuln. Returns (boot/asm)" (fun r -> r.Audit.vulnerable_rets);
  t
