(** Paper §8.6, operationalized: transient-attack drills against live
    images.

    For each image we run Spectre-V2 (BTB injection at the [vfs_read]
    dispatch), Ret2spec (RSB desynchronization), and LVI (value injection
    into the ops-table load), each trying to transiently reach the
    [spectre_gadget] leak function, plus a V2 drill against the
    para-virtualization assembly call that no pass can protect.
    "blocked" means the gadget was never transiently entered. *)

val run : Env.t -> Pibe_util.Tbl.t
