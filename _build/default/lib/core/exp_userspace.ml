module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats
module Spec = Pibe_kernel.Spec
module Pass = Pibe_harden.Pass
module Engine = Pibe_cpu.Engine

let iters = 120

let profile_suite spec =
  Pipeline.profile spec.Spec.prog ~run:(fun engine ->
      List.iter
        (fun (_, entry) -> ignore (Engine.call engine entry [ iters; 0 ]))
        spec.Spec.benchmarks)

let bench_cycles prog ~config (_, entry) =
  let engine = Engine.create ~config prog in
  ignore (Engine.call engine entry [ 20; 0 ]) (* warmup *);
  Engine.reset_cycles engine;
  ignore (Engine.call engine entry [ iters; 0 ]);
  float_of_int (Engine.cycles engine)

let run _env =
  let spec = Spec.build () in
  let profile = profile_suite spec in
  let lto = Pipeline.build spec.Spec.prog profile Config.lto in
  let unopt =
    Pipeline.build spec.Spec.prog profile (Exp_common.lto_with Exp_common.all_defenses)
  in
  let pibe =
    Pipeline.build spec.Spec.prog profile
      (Exp_common.full_opt ~lax:true ~icp:99.999 ~inline:99.9999 Exp_common.all_defenses)
  in
  let cycles built b =
    bench_cycles built.Pipeline.image.Pass.prog
      ~config:(Pass.engine_config built.Pipeline.image)
      b
  in
  let t =
    Tbl.create
      ~title:"Extension: PIBE on userspace programs (all defenses, overhead vs LTO)"
      ~columns:[ "benchmark"; "no optimization"; "PIBE" ]
  in
  let unopt_ovs = ref [] and pibe_ovs = ref [] in
  List.iter
    (fun b ->
      let base = cycles lto b in
      let u = Stats.overhead_pct ~baseline:base (cycles unopt b) in
      let p = Stats.overhead_pct ~baseline:base (cycles pibe b) in
      unopt_ovs := u :: !unopt_ovs;
      pibe_ovs := p :: !pibe_ovs;
      Tbl.add_row t [ Tbl.Str (fst b); Exp_common.pct u; Exp_common.pct p ])
    spec.Spec.benchmarks;
  Tbl.add_separator t;
  Tbl.add_row t
    [
      Tbl.Str "Geometric Mean";
      Exp_common.pct (Stats.geomean_overhead !unopt_ovs);
      Exp_common.pct (Stats.geomean_overhead !pibe_ovs);
    ];
  t
