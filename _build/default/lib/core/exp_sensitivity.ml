module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats

let seeds = [ 42; 1234; 777 ]

let run _env =
  let t =
    Tbl.create
      ~title:
        "Sensitivity: headline geomeans across kernel-generator seeds (scale 2)"
      ~columns:
        [ "seed"; "PGO baseline"; "all defenses, no opt"; "all defenses, PIBE"; "defended speedup" ]
  in
  List.iter
    (fun seed ->
      let env = Env.create ~scale:2 ~seed () in
      let pgo = Env.geomean_overhead env ~baseline:Config.lto Config.pibe_baseline in
      let unopt =
        Env.geomean_overhead env ~baseline:Config.lto
          (Exp_common.lto_with Exp_common.all_defenses)
      in
      let pibe =
        Env.geomean_overhead env ~baseline:Config.lto
          (Exp_common.best_config Exp_common.all_defenses)
      in
      let reduction = (100.0 +. unopt) /. (100.0 +. pibe) in
      Tbl.add_row t
        [
          Tbl.Int seed;
          Exp_common.pct pgo;
          Exp_common.pct unopt;
          Exp_common.pct pibe;
          Tbl.Str (Printf.sprintf "%.2fx" reduction);
        ])
    seeds;
  t
