module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats
module Icp = Pibe_opt.Icp
module Inl = Pibe_opt.Inliner

let budgets = [ 99.0; 99.9; 99.9999 ]

let run env =
  let t =
    Tbl.create ~title:"Table 8: indirect-branch gadgets eliminated per budget"
      ~columns:
        [
          "budget"; "icall weight"; "icall w%"; "call sites"; "sites %"; "call targets";
          "targets %"; "return weight"; "ret w%"; "return sites"; "ret sites %";
        ]
  in
  let totals = ref None in
  List.iter
    (fun budget ->
      let config = Exp_common.full_opt ~icp:budget ~inline:budget Exp_common.all_defenses in
      let built = Env.build env config in
      let icp = Option.get built.Pipeline.icp_stats in
      let inl = Option.get built.Pipeline.inline_stats in
      totals := Some (icp, inl);
      Tbl.add_row t
        [
          Tbl.Str (Printf.sprintf "%g%%" budget);
          Tbl.Int icp.Icp.promoted_weight;
          Exp_common.pct
            (Stats.ratio_pct ~num:icp.Icp.promoted_weight ~den:icp.Icp.total_weight);
          Tbl.Int icp.Icp.promoted_sites;
          Exp_common.pct (Stats.ratio_pct ~num:icp.Icp.promoted_sites ~den:icp.Icp.total_sites);
          Tbl.Int icp.Icp.promoted_targets;
          Exp_common.pct
            (Stats.ratio_pct ~num:icp.Icp.promoted_targets ~den:icp.Icp.total_targets);
          Tbl.Int inl.Inl.inlined_weight;
          Exp_common.pct
            (Stats.ratio_pct ~num:inl.Inl.inlined_weight ~den:inl.Inl.total_weight);
          Tbl.Int inl.Inl.inlined_sites;
          Exp_common.pct
            (Stats.ratio_pct ~num:inl.Inl.inlined_sites ~den:inl.Inl.total_ret_sites_before);
        ])
    budgets;
  (match !totals with
  | Some (icp, inl) ->
    Tbl.add_separator t;
    Tbl.add_row t
      [
        Tbl.Str "total";
        Tbl.Int icp.Icp.total_weight;
        Tbl.Empty;
        Tbl.Int icp.Icp.total_sites;
        Tbl.Empty;
        Tbl.Int icp.Icp.total_targets;
        Tbl.Empty;
        Tbl.Int inl.Inl.total_weight;
        Tbl.Empty;
        Tbl.Str "variable";
        Tbl.Empty;
      ]
  | None -> ());
  t
