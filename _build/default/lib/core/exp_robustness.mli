(** Paper §8.4: robustness to the training workload.

    Reports (a) how much candidate weight the LMBench and ApacheBench
    profiles share at a 99% budget, and (b) the LMBench geometric-mean
    overhead of the all-defenses kernel when optimized with the matched
    profile, with the mismatched Apache profile, and with LLVM's default
    bottom-up inliner — against the unoptimized bound. *)

val run : Env.t -> Pibe_util.Tbl.t * Pibe_util.Tbl.t
