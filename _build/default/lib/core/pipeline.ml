open Pibe_ir
module Profile = Pibe_profile.Profile

type built = {
  image : Pibe_harden.Pass.image;
  config : Config.t;
  icp_stats : Pibe_opt.Icp.stats option;
  inline_stats : Pibe_opt.Inliner.stats option;
  llvm_inline_stats : Pibe_opt.Llvm_inliner.stats option;
  post_icp_profile : Profile.t;
}

let profile prog ~run =
  let collector = Pibe_profile.Collector.create prog in
  let config =
    {
      Pibe_cpu.Engine.default_config with
      Pibe_cpu.Engine.on_edge = Some (Pibe_profile.Collector.hook collector);
    }
  in
  let engine = Pibe_cpu.Engine.create ~config prog in
  run engine;
  Pibe_profile.Collector.lift collector

let copy_profile p = Profile.merge p (Profile.create ())

(* Scalar cleanup runs in every configuration: it is part of the plain
   LTO pipeline the paper's baseline uses, and it is what converts the
   inliner's opportunities (propagated constants, dead argument moves)
   into actual savings. *)
let cleanup prog =
  let prog = Pibe_opt.Cleanup.run prog in
  Validate.check_exn prog;
  prog

let optimize prog profile opt =
  let profile = copy_profile profile in
  match opt with
  | Config.No_opt -> (cleanup prog, None, None, None, profile)
  | Config.Icp_only { budget } ->
    let prog, icp_stats = Pibe_opt.Icp.run prog profile { Pibe_opt.Icp.default_config with Pibe_opt.Icp.budget_pct = budget } in
    Validate.check_exn prog;
    (cleanup prog, Some icp_stats, None, None, profile)
  | Config.Full { icp_budget; inline_budget; lax } ->
    let prog, icp_stats =
      Pibe_opt.Icp.run prog profile
        { Pibe_opt.Icp.default_config with Pibe_opt.Icp.budget_pct = icp_budget }
    in
    Validate.check_exn prog;
    let inline_config =
      {
        Pibe_opt.Inliner.default_config with
        Pibe_opt.Inliner.budget_pct = inline_budget;
        lax_within_pct = (if lax then Some 99.0 else None);
      }
    in
    let prog, inline_stats = Pibe_opt.Inliner.run prog profile inline_config in
    Validate.check_exn prog;
    (cleanup prog, Some icp_stats, Some inline_stats, None, profile)
  | Config.Llvm_pgo { icp_budget; inline_budget } ->
    let prog, icp_stats =
      Pibe_opt.Icp.run prog profile
        { Pibe_opt.Icp.default_config with Pibe_opt.Icp.budget_pct = icp_budget }
    in
    Validate.check_exn prog;
    let cfg =
      { Pibe_opt.Llvm_inliner.default_config with Pibe_opt.Llvm_inliner.budget_pct = inline_budget }
    in
    let prog, llvm_stats = Pibe_opt.Llvm_inliner.run prog profile cfg in
    Validate.check_exn prog;
    (cleanup prog, Some icp_stats, None, Some llvm_stats, profile)

let build prog profile config =
  let prog, icp_stats, inline_stats, llvm_inline_stats, post_icp_profile =
    optimize prog profile config.Config.opt
  in
  let image = Pibe_harden.Pass.harden prog config.Config.defenses in
  { image; config; icp_stats; inline_stats; llvm_inline_stats; post_icp_profile }

let engine ?base built =
  let config = Pibe_harden.Pass.engine_config ?base built.image in
  Pibe_cpu.Engine.create ~config built.image.Pibe_harden.Pass.prog
