module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats
module Program = Pibe_ir.Program
module Icp = Pibe_opt.Icp
module Inl = Pibe_opt.Inliner

let budgets = [ 99.0; 99.9; 99.9999 ]

let run env =
  let info = Env.info env in
  let total_icalls = Program.total_icall_sites info.Pibe_kernel.Gen.prog in
  let columns =
    "statistic"
    :: (List.map (fun b -> Printf.sprintf "icp (%g%%)" b) budgets
       @ List.map (fun b -> Printf.sprintf "inl (%g%%)" b) budgets)
  in
  let t =
    Tbl.create ~title:"Table 10: optimization candidates vs total indirect branches" ~columns
  in
  let stats =
    List.map
      (fun budget ->
        let config = Exp_common.full_opt ~icp:budget ~inline:budget Exp_common.all_defenses in
        let built = Env.build env config in
        (Option.get built.Pipeline.icp_stats, Option.get built.Pipeline.inline_stats))
      budgets
  in
  let ret_totals = List.map (fun (_, inl) -> inl.Inl.total_ret_sites_before) stats in
  Tbl.add_row t
    (Tbl.Str "Ind. Branches"
    :: (List.map (fun _ -> Tbl.Int total_icalls) budgets
       @ List.map (fun r -> Tbl.Int r) ret_totals));
  Tbl.add_row t
    (Tbl.Str "Candidates"
    :: (List.map
          (fun (icp, _) ->
            Exp_common.pct (Stats.ratio_pct ~num:icp.Icp.promoted_sites ~den:total_icalls))
          stats
       @ List.map
           (fun (_, inl) ->
             Exp_common.pct
               (Stats.ratio_pct ~num:inl.Inl.initial_candidates
                  ~den:inl.Inl.total_ret_sites_before))
           stats));
  t
