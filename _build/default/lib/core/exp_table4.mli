(** Paper Table 4: how many targets each profiled indirect call site
    invokes under the LMBench workload (multi-target sites are what
    degrade JumpSwitches). *)

val run : Env.t -> Pibe_util.Tbl.t
