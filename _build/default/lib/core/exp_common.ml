module Pass = Pibe_harden.Pass
module Tbl = Pibe_util.Tbl

let retpolines_only = { Pass.retpolines = true; ret_retpolines = false; lvi = false }
let ret_retpolines_only = { Pass.retpolines = false; ret_retpolines = true; lvi = false }
let lvi_only = { Pass.retpolines = false; ret_retpolines = false; lvi = true }
let all_defenses = Pass.all_defenses
let lto_with defenses = { Config.defenses; opt = Config.No_opt }

let full_opt ?(lax = false) ?(icp = 99.999) ~inline defenses =
  { Config.defenses; opt = Config.Full { icp_budget = icp; inline_budget = inline; lax } }

let icp_only ~budget defenses = { Config.defenses; opt = Config.Icp_only { budget } }

let best_config defenses =
  if defenses = retpolines_only then icp_only ~budget:99.999 defenses
  else full_opt ~lax:true ~inline:99.9999 defenses

let pct v = Tbl.Pct v
let cycles v = Tbl.Float v
