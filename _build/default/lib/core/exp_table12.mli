(** Paper Table 12: image size and memory growth due to the algorithms.

    [abs size] is growth relative to the LTO baseline image; [img size]
    relative to an unoptimized image with the same defenses; [mem size]
    the resident code pages at the same granularity; [peak stack] the
    peak simulated stack footprint while running the LMBench workload
    (our substitute for the paper's slab/dynamic columns — see
    DESIGN.md). *)

val run : Env.t -> Pibe_util.Tbl.t
