(** Extension experiment: PIBE beyond the kernel.

    The paper's introduction claims the approach "applies equally to other
    code: hypervisors, SGX(-like) enclaves, and user programs".  This
    experiment exercises that claim on the SPEC-shaped userspace suite:
    profile each program, run the same ICP + greedy-inlining pipeline, and
    compare all-defenses overheads with and without PIBE. *)

val run : Env.t -> Pibe_util.Tbl.t
