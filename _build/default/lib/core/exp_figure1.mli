(** Paper Figure 1: the caller [bar] with callees [foo_1] (weight 1000,
    InlineCost ~12000) and [foo_2]/[foo_3] (weight 500 each, costs
    300/200).  A greedy inliner with only Rules 1-2 spends bar's whole
    complexity budget on [foo_1]; Rule 3 instead skips the oversized
    callee and elides the same execution weight with budget to spare. *)

val run : Env.t -> Pibe_util.Tbl.t
