(** Ablations of PIBE's design choices (DESIGN.md §4):

    - weight-ordered greedy inlining vs LLVM's bottom-up order;
    - size heuristics (Rules 2-3) on vs off entirely;
    - unlimited ICP targets vs top-1 promotion (JumpSwitch-style slots);
    - the i-cache model on vs off (why unbounded inlining can lose).

    All rows report the LMBench geometric-mean overhead of the
    all-defenses kernel vs the LTO baseline. *)

val run : Env.t -> Pibe_util.Tbl.t
