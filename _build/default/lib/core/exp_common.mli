(** Shared vocabulary for the experiment modules: the paper's defense
    sets, standard configurations, and formatting helpers. *)

val retpolines_only : Pibe_harden.Pass.defenses
val ret_retpolines_only : Pibe_harden.Pass.defenses
val lvi_only : Pibe_harden.Pass.defenses
val all_defenses : Pibe_harden.Pass.defenses

val lto_with : Pibe_harden.Pass.defenses -> Config.t
(** No optimization, given defenses. *)

val full_opt : ?lax:bool -> ?icp:float -> inline:float -> Pibe_harden.Pass.defenses -> Config.t
(** ICP (default 99.999%) + PIBE inlining at the given budget. *)

val icp_only : budget:float -> Pibe_harden.Pass.defenses -> Config.t

val best_config : Pibe_harden.Pass.defenses -> Config.t
(** The per-defense optimal configuration the paper selects in Table 6:
    ICP only for retpolines, full lax optimization otherwise. *)

val pct : float -> Pibe_util.Tbl.cell
val cycles : float -> Pibe_util.Tbl.cell
