module Tbl = Pibe_util.Tbl
module Profile = Pibe_profile.Profile

let run env =
  let profile = Env.lmbench_profile env in
  let buckets = Array.make 7 0 in
  List.iter
    (fun origin ->
      let n = List.length (Profile.value_profile profile ~origin) in
      if n >= 1 then
        if n <= 6 then buckets.(n - 1) <- buckets.(n - 1) + 1
        else buckets.(6) <- buckets.(6) + 1)
    (Profile.profiled_indirect_origins profile);
  let columns =
    "targets"
    :: (List.init 6 (fun i -> Printf.sprintf "%d targets" (i + 1)) @ [ "> 6 targets" ])
  in
  let t =
    Tbl.create ~title:"Table 4: indirect calls by number of profiled targets" ~columns
  in
  Tbl.add_row t
    (Tbl.Str "Indirect Calls" :: Array.to_list (Array.map (fun c -> Tbl.Int c) buckets));
  t
