module Profile = Pibe_profile.Profile
module Rng = Pibe_util.Rng
module Stats = Pibe_util.Stats

type t = {
  scale : int;
  seed : int;
  msettings : Measure.settings;
  profile_iters : int;
  mutable kernel : Pibe_kernel.Gen.info option;
  mutable lmb_profile : Profile.t option;
  mutable ap_profile : Profile.t option;
  builds : (Config.t, Pipeline.built) Hashtbl.t;
  lat_cache : (Config.t, (string * float) list) Hashtbl.t;
}

let create ?(scale = 3) ?(seed = 42) ?(settings = Measure.default_settings)
    ?(profile_iters = 300) () =
  {
    scale;
    seed;
    msettings = settings;
    profile_iters;
    kernel = None;
    lmb_profile = None;
    ap_profile = None;
    builds = Hashtbl.create 16;
    lat_cache = Hashtbl.create 16;
  }

let quick () =
  create ~scale:1 ~settings:Measure.quick_settings ~profile_iters:60 ()

let info t =
  match t.kernel with
  | Some i -> i
  | None ->
    let i = Pibe_kernel.Gen.generate { Pibe_kernel.Ctx.seed = t.seed; scale = t.scale } in
    t.kernel <- Some i;
    i

let ops t = Pibe_kernel.Workload.lmbench (info t)
let settings t = t.msettings

let lmbench_profile t =
  match t.lmb_profile with
  | Some p -> p
  | None ->
    let i = info t in
    let p =
      Pipeline.profile i.Pibe_kernel.Gen.prog ~run:(fun engine ->
          let rng = Rng.create 11 in
          List.iter
            (fun (op : Pibe_kernel.Workload.op) ->
              for _ = 1 to t.profile_iters do
                op.Pibe_kernel.Workload.run engine rng
              done)
            (ops t))
    in
    t.lmb_profile <- Some p;
    p

let apache_profile t =
  match t.ap_profile with
  | Some p -> p
  | None ->
    let i = info t in
    let mix = Pibe_kernel.Workload.apache i in
    let p =
      Pipeline.profile i.Pibe_kernel.Gen.prog ~run:(fun engine ->
          let rng = Rng.create 13 in
          for _ = 1 to t.profile_iters * 4 do
            mix.Pibe_kernel.Workload.request engine rng
          done)
    in
    t.ap_profile <- Some p;
    p

let build t config =
  match Hashtbl.find_opt t.builds config with
  | Some b -> b
  | None ->
    let i = info t in
    let b = Pipeline.build i.Pibe_kernel.Gen.prog (lmbench_profile t) config in
    Hashtbl.replace t.builds config b;
    b

let build_with_profile t ~profile config =
  let i = info t in
  Pipeline.build i.Pibe_kernel.Gen.prog profile config

let latencies t config =
  match Hashtbl.find_opt t.lat_cache config with
  | Some l -> l
  | None ->
    let b = build t config in
    let engine = Pipeline.engine b in
    let l = Measure.suite_latencies ~settings:t.msettings engine (ops t) in
    Hashtbl.replace t.lat_cache config l;
    l

let overheads t ~baseline config =
  let base = latencies t baseline in
  let v = latencies t config in
  List.map2
    (fun (name, b) (name', x) ->
      assert (String.equal name name');
      (name, Stats.overhead_pct ~baseline:b x))
    base v

let geomean_overhead t ~baseline config =
  Stats.geomean_overhead (List.map snd (overheads t ~baseline config))
