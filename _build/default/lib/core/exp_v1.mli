(** Extension experiment: the Spectre-V1 side of the threat model.

    PIBE excludes V1 because static analysis handles it (paper §3, §6.1:
    "few conditional branches are suitable gadgets, and static analysis
    can identify and protect them efficiently").  This experiment runs our
    scanner over the kernel and reports how rare the candidates are —
    and that none of them sits behind an indirect branch PIBE would have
    had to leave unprotected. *)

val run : Env.t -> Pibe_util.Tbl.t
