(** Paper Table 9: inlining weight *not* elided because of the size
    heuristics (Rule 2: caller complexity; Rule 3: callee complexity) or
    other reasons (noinline / optnone / assembly / recursion), per
    budget. *)

val run : Env.t -> Pibe_util.Tbl.t
