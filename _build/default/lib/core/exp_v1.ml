module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats
module V1 = Pibe_harden.V1_scan

let run env =
  let info = Env.info env in
  let report = V1.scan info.Pibe_kernel.Gen.prog in
  let t =
    Tbl.create ~title:"Spectre-V1 static scan of the kernel (paper section 3 / 6.1)"
      ~columns:[ "statistic"; "value" ]
  in
  Tbl.add_row t [ Tbl.Str "functions scanned"; Tbl.Int report.V1.functions_scanned ];
  Tbl.add_row t
    [ Tbl.Str "conditional branches"; Tbl.Int report.V1.conditional_branches ];
  Tbl.add_row t [ Tbl.Str "candidate gadgets"; Tbl.Int (List.length report.V1.gadgets) ];
  Tbl.add_row t
    [
      Tbl.Str "gadget rate";
      Exp_common.pct
        (Stats.ratio_pct
           ~num:(List.length report.V1.gadgets)
           ~den:(max 1 report.V1.conditional_branches));
    ];
  List.iteri
    (fun i (g : V1.gadget) ->
      if i < 8 then
        Tbl.add_row t
          [
            Tbl.Str (Printf.sprintf "  gadget %d" (i + 1));
            Tbl.Str (Printf.sprintf "@%s bb%d->bb%d" g.V1.gadget_func g.V1.branch_block g.V1.load_block);
          ])
    report.V1.gadgets;
  t
