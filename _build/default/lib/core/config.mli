(** End-to-end image configurations: which transient defenses to enable
    and which PIBE optimization strategy to run first (paper §8's kernel
    configurations). *)

type opt_level =
  | No_opt  (** the LTO baseline: no profile-guided transformations *)
  | Icp_only of { budget : float }  (** promotion only (retpoline studies, Table 3) *)
  | Full of {
      icp_budget : float;
      inline_budget : float;
      lax : bool;  (** disable size heuristics inside the 99% budget (§8.3) *)
    }
  | Llvm_pgo of {
      icp_budget : float;
      inline_budget : float;
    }  (** ICP + LLVM's default bottom-up inliner (§8.4 comparison) *)

type t = {
  defenses : Pibe_harden.Pass.defenses;
  opt : opt_level;
}

val lto : t
(** Vanilla LTO kernel: no optimization, no defenses. *)

val pibe_baseline : t
(** PIBE's PGO at the best-performing configuration, defenses off
    (Table 2's second baseline). *)

val with_defenses : t -> Pibe_harden.Pass.defenses -> t
val name : t -> string
(** Human-readable label, e.g. ["all-defenses +icp+inlining(99.9%)"]. *)
