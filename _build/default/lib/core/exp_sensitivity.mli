(** Extension experiment: are the conclusions an artifact of one generated
    kernel?

    Regenerates the kernel with different seeds (different function sizes,
    cold-code layout, dispatch-table contents) and reports the headline
    geometric means for each.  The claims must hold for every seed:
    unoptimized comprehensive defenses cost on the order of 100%+, PIBE
    brings them down by roughly an order of magnitude, and the PGO
    baseline is a net speedup. *)

val run : Env.t -> Pibe_util.Tbl.t
