module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats
module Inl = Pibe_opt.Inliner

let budgets = [ 99.0; 99.9; 99.9999 ]

let run env =
  let t =
    Tbl.create ~title:"Table 9: inlining weight blocked by size heuristics"
      ~columns:[ "budget"; "Ovr."; "Rule 2"; "r2 %"; "Rule 3"; "r3 %"; "other"; "other %" ]
  in
  List.iter
    (fun budget ->
      let config = Exp_common.full_opt ~icp:budget ~inline:budget Exp_common.all_defenses in
      let built = Env.build env config in
      let s = Option.get built.Pipeline.inline_stats in
      let den = max 1 s.Inl.eligible_weight in
      Tbl.add_row t
        [
          Tbl.Str (Printf.sprintf "%g%%" budget);
          Tbl.Int s.Inl.eligible_weight;
          Tbl.Int s.Inl.blocked_rule2_weight;
          Exp_common.pct (Stats.ratio_pct ~num:s.Inl.blocked_rule2_weight ~den);
          Tbl.Int s.Inl.blocked_rule3_weight;
          Exp_common.pct (Stats.ratio_pct ~num:s.Inl.blocked_rule3_weight ~den);
          Tbl.Int s.Inl.blocked_other_weight;
          Exp_common.pct (Stats.ratio_pct ~num:s.Inl.blocked_other_weight ~den);
        ])
    budgets;
  t
