lib/jumpswitch/jumpswitch.ml: Hashtbl List Option Pibe_cpu Pibe_ir String
