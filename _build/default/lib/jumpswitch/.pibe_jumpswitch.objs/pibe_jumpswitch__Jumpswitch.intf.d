lib/jumpswitch/jumpswitch.mli: Pibe_ir
